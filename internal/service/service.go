// Package service implements tqecd, the long-lived TQEC compilation
// daemon: an HTTP/JSON job service that runs the compression pipeline on
// a bounded worker pool, answers repeated compiles of identical workloads
// from a content-addressed result cache, and supports per-job deadlines
// and cancellation by plumbing context.Context into the pipeline's
// annealing and routing hot loops.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a compile (may complete instantly on cache hit)
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result result payload (409 until the job is done)
//	GET    /v1/jobs/{id}/trace  span tree of a traced job (?format=chrome for chrome://tracing)
//	GET    /v1/jobs/{id}/events live Server-Sent-Events stream of the job's
//	                            flight-recorder journal (replays buffered
//	                            events, then tails until the job finishes)
//	GET    /v1/jobs/{id}/journal structured compression journal of a
//	                            finished job (409 until terminal)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/query_range      metrics history frames from the self-scrape
//	                            time-series store (404 when disabled)
//	GET    /v1/alerts           SLO alert states and transition events
//	                            (404 when no objectives are configured)
//	GET    /healthz             liveness (503 while draining) + version, uptime, queue depth
//	GET    /metrics             counters, cache stats, latency histograms
//	                            (JSON by default; Prometheus text exposition
//	                            when the request Accepts text/plain)
//
// Everything is stdlib-only and deterministic for a fixed seed list: the
// same submission always produces the same result payload, which is what
// makes content-addressed caching sound.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"tqec/internal/circuit"
	"tqec/internal/compress"
	"tqec/internal/drc"
	"tqec/internal/journal"
	"tqec/internal/obs"
	"tqec/internal/store"
	"tqec/internal/tsdb"
)

// Config tunes the service. Zero values select defaults.
type Config struct {
	// Workers bounds concurrent compiles (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting jobs; submits beyond it are rejected with
	// 503 (default 64).
	QueueDepth int
	// CacheEntries bounds the result cache (default 256; negative
	// disables caching, including the durable result store's read path).
	CacheEntries int
	// CacheBytes additionally bounds the in-memory result cache by the
	// summed serialized payload size (0 = no byte bound). The accounting
	// is shared with the on-disk store's GC (store.ByteLRU).
	CacheBytes int64
	// Store, when non-nil, is the durable storage layer: finished results
	// are written through to its content-addressed store (and served from
	// it across restarts as done_cached), and every job lifecycle
	// transition lands in its write-ahead log, replayed by New so jobs
	// queued or running at crash time are re-queued under their original
	// IDs. The caller owns the store and closes it after Shutdown/Close.
	// Nil keeps today's in-memory-only behavior, bit-identical.
	Store *store.Store
	// DefaultTimeout applies to jobs that do not set one (default 5m).
	DefaultTimeout time.Duration
	// MaxTimeout clamps requested deadlines (default 30m).
	MaxTimeout time.Duration
	// MaxFinishedJobs bounds how many terminal jobs stay queryable via the
	// status/result endpoints; beyond it the oldest-finished jobs are
	// forgotten so a long-lived daemon does not accumulate every job it
	// ever ran (default 512; negative retains everything).
	MaxFinishedJobs int
	// JournalEvents bounds each job's flight-recorder ring buffer, i.e.
	// how many journal events GET /v1/jobs/{id}/events can replay to a
	// late subscriber (default 4096; negative disables journaling
	// entirely, making the events and journal endpoints answer 404).
	JournalEvents int
	// SlowProfileAfter arms slow-job flight-data capture: a job still
	// running after this long records a pprof CPU profile, retrievable
	// via GET /v1/jobs/{id}/profile once the job finishes (0 disables).
	// Capture is best-effort — runtime/pprof allows one CPU profile per
	// process, so when two slow jobs overlap only the first records.
	SlowProfileAfter time.Duration
	// HistoryInterval enables the metrics-history self-scrape loop: every
	// interval the daemon gathers its own metric registry into a bounded
	// in-process time-series store served at GET /v1/query_range. Zero
	// disables the loop entirely — no goroutine runs, the endpoint
	// answers 404, and daemon behavior stays bit-identical.
	HistoryInterval time.Duration
	// HistorySamples bounds each retained series' sample ring (default
	// tsdb.DefaultCapacity).
	HistorySamples int
	// SLOs are declarative objectives evaluated against the history
	// store after every self-scrape; alert lifecycle is served at
	// GET /v1/alerts and mirrored as tqecd_slo_* metric families.
	// Requires HistoryInterval > 0 (ignored with a warning otherwise).
	SLOs []tsdb.Objective
	// Logger receives structured per-job log lines (default: text handler
	// on stderr at info level, the same shape the tqec CLIs use).
	Logger *slog.Logger
	// Compile substitutes the compile pipeline (default
	// compress.CompileBestContext). Tests and embedders — the fleet
	// failover tests in particular — inject deterministic or blocking
	// stand-ins here.
	Compile CompileFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.MaxFinishedJobs == 0 {
		c.MaxFinishedJobs = 512
	}
	if c.JournalEvents == 0 {
		c.JournalEvents = journal.DefaultMaxEvents
	}
	if c.Logger == nil {
		l, err := obs.NewLogger(obs.LogConfig{Writer: os.Stderr})
		if err != nil { // unreachable with the zero config
			panic(err)
		}
		c.Logger = l
	}
	return c
}

// State is a job's lifecycle stage.
type State string

// Job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one tracked compilation. All mutable fields are guarded by the
// server mutex; the immutable inputs are set at submission.
type Job struct {
	ID   string
	Name string
	Key  string // cache key

	circ     *circuit.Circuit
	opt      compress.Options
	seeds    []int64
	parallel int
	timeout  time.Duration
	noCache  bool
	trace    bool
	// traceCtx is the inbound distributed trace context (from a
	// traceparent header) the job's tracer links under; zero when the
	// submission is the trace root. requestID is the X-Request-ID the
	// submission carried (or ""), stamped on every log line. Both are
	// immutable after newJob.
	traceCtx  obs.TraceContext
	requestID string

	state           State
	cached          bool
	errMsg          string
	cancelRequested bool
	cancel          context.CancelFunc
	submitted       time.Time
	started         time.Time
	finished        time.Time
	payload         *ResultPayload
	tracer          *obs.Tracer // non-nil once a traced job starts running
	profile         []byte      // pprof CPU profile of a slow job; nil otherwise

	// recorder is the job's flight recorder, created at submission so even
	// queued, cache-answered, and rejected jobs stream their lifecycle;
	// nil when Config.JournalEvents is negative. journal is the structured
	// waterfall document of a compile that ran to completion. Neither is
	// part of ResultPayload: a cache replay runs no pipeline, so replaying
	// a prior job's journal under a new job ID would misattribute it.
	recorder *journal.Recorder
	journal  *journal.Journal
}

// ResultPayload is the serialized outcome of a finished job — and the
// unit the result cache stores. It carries the compact report, not the
// full artifact bundle, so cached entries stay small.
type ResultPayload struct {
	Name     string          `json:"name"`
	CacheKey string          `json:"cache_key"`
	Report   compress.Report `json:"report"`
	DRC      *drc.Report     `json:"drc,omitempty"`
	Summary  string          `json:"summary"`
}

// CompileFunc runs one multi-seed compile; it is a Server field (and a
// Config hook) so tests can substitute a deterministic pipeline.
type CompileFunc func(ctx context.Context, c *circuit.Circuit, opt compress.Options, seeds []int64, parallel int) (*compress.Result, error)

// Server is the compile service. Create with New, mount via Handler, and
// stop with Shutdown (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	metrics *metrics
	cache   *resultCache
	store   *store.Store // nil without a data dir
	mux     *http.ServeMux
	compile CompileFunc

	rootCtx    context.Context
	rootCancel context.CancelFunc
	started    time.Time // process uptime anchor for /healthz

	// history/collector/slo are the metrics-history surface; all nil
	// when Config.HistoryInterval is zero.
	history   *tsdb.DB
	collector *tsdb.Collector
	slo       *tsdb.Engine

	mu       sync.Mutex
	jobs     map[string]*Job // guarded by mu
	nextID   int             // guarded by mu
	finished []string        // guarded by mu; terminal job IDs, oldest first, for retention pruning
	draining bool            // guarded by mu
	closed   bool            // guarded by mu
	queue    chan *Job
	workers  sync.WaitGroup
}

// New starts the worker pool and returns the service. ctx is the
// server's root context: cancelling it cancels every queued and running
// job (Shutdown additionally drains the pool gracefully).
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := newMetrics()
	var disk *store.Results
	if cfg.Store != nil {
		disk = cfg.Store.Results
		m.registerStore(cfg.Store)
	}
	s := &Server{
		cfg:     cfg,
		metrics: m,
		cache:   newResultCache(cfg.CacheEntries, cfg.CacheBytes, disk, cfg.Logger, m),
		store:   cfg.Store,
		jobs:    map[string]*Job{},
		queue:   make(chan *Job, cfg.QueueDepth),
		compile: compress.CompileBestContext,
		started: time.Now(),
	}
	if cfg.Compile != nil {
		s.compile = cfg.Compile
	}
	s.rootCtx, s.rootCancel = context.WithCancel(ctx)
	if cfg.HistoryInterval > 0 {
		s.history = tsdb.New(cfg.HistorySamples)
		s.collector = tsdb.NewCollector(s.history, m.reg, cfg.HistoryInterval)
		if len(cfg.SLOs) > 0 {
			s.slo = tsdb.NewEngine(s.history, cfg.SLOs, m.reg, cfg.Logger)
			s.collector.AfterScrape = s.slo.Eval
		}
		s.collector.Start()
	} else if len(cfg.SLOs) > 0 {
		cfg.Logger.WarnContext(ctx, "slo objectives configured but metrics history is disabled; enable the self-scrape loop")
	}
	s.mux = s.routes()
	// Replay the write-ahead log before any worker starts: jobs queued or
	// running when the previous process died re-enter the queue (under
	// their original IDs) ahead of every new submission.
	if s.store != nil {
		s.recoverFromWAL()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Shutdown drains the service: new submissions are rejected, queued and
// running jobs are allowed to finish, and the call returns when every
// worker has exited. If ctx expires first, in-flight compiles are
// cancelled (they stop at their next iteration boundary) and the drain
// completes with ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.stopCollector()
		return nil
	case <-ctx.Done():
		s.rootCancel()
		<-done
		s.stopCollector()
		return ctx.Err()
	}
}

func (s *Server) stopCollector() {
	if s.collector != nil {
		s.collector.Stop()
	}
}

// Close cancels everything in flight and waits for the workers.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.rootCancel()
	s.workers.Wait()
	s.stopCollector()
}

// newJob registers a job in the queued state. Callers hold no locks.
func (s *Server) newJob(name, key string, c *circuit.Circuit, opt compress.Options, seeds []int64, parallel int, timeout time.Duration, noCache, trace bool, traceCtx obs.TraceContext, requestID string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", s.nextID),
		Name:      name,
		Key:       key,
		circ:      c,
		opt:       opt,
		seeds:     seeds,
		parallel:  parallel,
		timeout:   timeout,
		noCache:   noCache,
		trace:     trace,
		traceCtx:  traceCtx,
		requestID: requestID,
		state:     StateQueued,
		submitted: time.Now(),
	}
	if s.cfg.JournalEvents > 0 {
		j.recorder = journal.NewRecorder(s.cfg.JournalEvents)
		j.recorder.JobState(string(StateQueued), "")
	}
	s.jobs[j.ID] = j
	return j
}

// enqueue pushes a registered job onto the bounded queue. It returns
// false when the service is draining or the queue is full; the job is
// then marked failed-rejected and the submit endpoint reports 503.
func (s *Server) enqueue(j *Job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	select {
	case s.queue <- j:
		s.metrics.jobsQueued.Add(1)
		return true
	default:
		return false
	}
}

// worker runs queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job end to end and records its outcome.
func (s *Server) runJob(j *Job) {
	s.mu.Lock()
	s.metrics.jobsQueued.Add(-1)
	if j.state != StateQueued {
		// Cancelled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	ctx, cancel := context.WithTimeout(s.rootCtx, j.timeout)
	j.cancel = cancel
	// Each traced job gets its own tracer, so concurrent jobs never
	// interleave spans; untraced jobs keep the nil fast path.
	if j.trace {
		j.tracer = obs.NewTracer("job:" + j.ID)
		if j.traceCtx.Valid() {
			// The submission arrived with a traceparent header: this
			// job's span tree is a subtree of the caller's distributed
			// trace (the fleet coordinator stitches it back under its
			// dispatch span). A malformed or absent header leaves the
			// tracer a fresh local root.
			j.tracer.Link(j.traceCtx)
		}
		ctx = obs.WithTracer(ctx, j.tracer)
	}
	if j.recorder != nil {
		ctx = journal.WithRecorder(ctx, j.recorder)
		j.recorder.JobState(string(StateRunning), "")
	}
	s.mu.Unlock()
	defer cancel()
	s.walAppend(walTypeStarted, j.ID, nil)

	s.metrics.jobsRunning.Add(1)
	defer s.metrics.jobsRunning.Add(-1)
	queueDur := j.started.Sub(j.submitted)
	s.metrics.queueWait.ObserveDuration(queueDur)
	s.metrics.jobQueueSeconds.Observe(queueDur.Seconds())
	s.log(j, "start", "seeds", len(j.seeds), "effort", int(j.opt.Effort),
		"mode", j.opt.Mode.String(), "timeout", j.timeout, "trace", j.trace)

	prof := s.armSlowProfile(j)
	res, err := s.compile(ctx, j.circ, j.opt, j.seeds, j.parallel)
	profile := prof.stop()
	j.tracer.Finish()

	s.mu.Lock()
	j.profile = profile
	j.finished = time.Now()
	j.cancel = nil
	runDur := j.finished.Sub(j.started)
	// A best-of sweep in which the context fired after >=1 seed succeeded
	// returns err==nil with the context error only in SeedErrors. Such a
	// result is valid for this job but NOT the deterministic full-seed-set
	// answer the cache key promises, so it must never be cached.
	interrupted := err == nil && (ctx.Err() != nil || seedsInterrupted(res.SeedErrors))
	switch {
	case err != nil && j.cancelRequested && errors.Is(err, context.Canceled):
		j.state = StateCanceled
		j.errMsg = "canceled"
		s.metrics.jobsCanceled.Inc()
		s.log(j, "canceled", "run_ms", ms(runDur))
	case err != nil && errors.Is(err, context.Canceled) && s.rootCtx.Err() != nil:
		// Aborted by Close or an expired Shutdown drain, not by the job's
		// own deadline or a DELETE.
		j.state = StateCanceled
		j.errMsg = "canceled: server shutting down"
		s.metrics.jobsCanceled.Inc()
		s.log(j, "canceled", "while", "draining", "run_ms", ms(runDur))
	case err != nil:
		j.state = StateFailed
		j.errMsg = err.Error()
		s.metrics.jobsFailed.Inc()
		s.log(j, "failed", "run_ms", ms(runDur), "err", j.errMsg)
	case j.cancelRequested && interrupted:
		// The cancel landed after some seeds had already succeeded; honor
		// the DELETE rather than reporting the partial sweep as done.
		j.state = StateCanceled
		j.errMsg = "canceled"
		s.metrics.jobsCanceled.Inc()
		s.log(j, "canceled", "run_ms", ms(runDur), "partial_seeds", res.SeedsTried-len(res.SeedErrors))
	default:
		j.state = StateDone
		j.journal = res.Journal
		j.payload = s.buildPayload(j, res)
		s.metrics.jobsDone.Inc()
		s.metrics.compile.ObserveDuration(runDur)
		for _, st := range res.StageTimes {
			s.metrics.observeStage(st.Stage, st.Duration)
		}
		s.recordPipeline(res)
		s.log(j, "done", "run_ms", ms(runDur), "volume", res.Volume, "placed", res.PlacedVolume,
			"seeds_failed", len(res.SeedErrors), "partial", interrupted)
	}
	s.metrics.jobRunSeconds.Observe(runDur.Seconds())
	s.finishLocked(j)
	state, cached, errMsg, payload := j.state, j.cached, j.errMsg, j.payload
	// A job aborted because the server itself is dying gets NO terminal
	// WAL record: its submitted record survives, so a restart replays it.
	// Every deliberate outcome — done, failed, a client's cancel — is
	// recorded durably.
	shutdownCancel := state == StateCanceled && !j.cancelRequested && s.rootCtx.Err() != nil
	s.mu.Unlock()

	// Cache insertion (and its durable write-through) happens outside the
	// server lock: disk latency must not stall the job table. A partial
	// (interrupted) sweep is never admitted — the key promises the full
	// deterministic seed-set answer, and a partial result is not it.
	if state == StateDone && !j.noCache && !interrupted {
		s.cache.Put(j.Key, payload)
	}
	if !shutdownCancel {
		s.walTerminalFor(j, state, cached, errMsg)
	}
}

// recordPipeline folds the best-seed result of a completed compile into
// the pipeline-level counters: how much optimization work the daemon has
// performed, not just how many jobs it ran.
func (s *Server) recordPipeline(res *compress.Result) {
	if res.Placement != nil {
		s.metrics.annealMoves.Add(int64(res.Placement.SA.Moves))
		s.metrics.annealAccepted.Add(int64(res.Placement.SA.Accepted))
	}
	if res.Routing != nil {
		s.metrics.routeRounds.Add(int64(res.Routing.Iters))
	}
	if merges := res.NumModules - res.NumNodes; merges > 0 {
		s.metrics.primalMerges.Add(int64(merges))
	}
	if res.Dual != nil {
		s.metrics.dualBridges.Add(int64(res.Dual.NumBridges()))
	}
}

// seedsInterrupted reports whether any per-seed failure was the context
// being canceled or timing out, i.e. the sweep stopped early rather than
// running every seed to completion.
func seedsInterrupted(errs []compress.SeedError) bool {
	for _, se := range errs {
		if errors.Is(se.Err, context.Canceled) || errors.Is(se.Err, context.DeadlineExceeded) {
			return true
		}
	}
	return false
}

// finishLocked finalizes a terminal job under s.mu: the flight recorder
// emits its terminal state and closes (ending every SSE stream), the
// parsed circuit is released immediately, and once the retention bound is
// exceeded the oldest-finished jobs are dropped from the job table
// entirely (their IDs then answer 404, like a restart would). Every
// terminal transition — done, failed, canceled, rejected, cache replay —
// funnels through here, so subscribers always see exactly one terminal
// job-state event.
func (s *Server) finishLocked(j *Job) {
	if j.recorder != nil {
		j.recorder.JobState(string(j.state), j.errMsg)
		j.recorder.Close()
		// The ring is final now: fold any silently dropped events into the
		// daemon-wide counter so event loss is visible on /metrics.
		if n := j.recorder.Dropped(); n > 0 {
			s.metrics.journalDropped.Add(n)
		}
	}
	j.circ = nil
	if s.cfg.MaxFinishedJobs < 0 {
		return
	}
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.MaxFinishedJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// buildPayload serializes a finished compile.
func (s *Server) buildPayload(j *Job, res *compress.Result) *ResultPayload {
	rep := res.Report()
	rep.Name = j.Name
	return &ResultPayload{
		Name:     j.Name,
		CacheKey: j.Key,
		Report:   rep,
		DRC:      res.DRC,
		Summary:  res.Summary(),
	}
}

// cancelJob requests cancellation. The returned state is the job's state
// after the request; ok is false when the job was already terminal.
func (s *Server) cancelJob(j *Job) (State, bool) {
	s.mu.Lock()
	switch j.state {
	case StateQueued:
		// The worker will observe the state change and skip the job.
		j.state = StateCanceled
		j.cancelRequested = true
		j.errMsg = "canceled"
		j.finished = time.Now()
		s.metrics.jobsCanceled.Inc()
		s.finishLocked(j)
		s.mu.Unlock()
		s.walTerminalFor(j, StateCanceled, false, "canceled")
		s.log(j, "canceled", "while", "queued")
		return StateCanceled, true
	case StateRunning:
		j.cancelRequested = true
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		// Durable intent: even if the compile (or the whole process) dies
		// before the cancel lands, replay must never resurrect this job.
		s.walAppend(walTypeCancelRequested, j.ID, nil)
		s.log(j, "cancel-requested", "while", "running")
		return StateRunning, true
	default:
		st := j.state
		s.mu.Unlock()
		return st, false
	}
}

// Stats is a point-in-time load snapshot of the service, the payload a
// fleet worker reports to its coordinator on every heartbeat.
type Stats struct {
	// Queued is the number of jobs waiting for a worker-pool slot.
	Queued int `json:"queued"`
	// Running is the number of jobs currently compiling.
	Running int `json:"running"`
}

// Stats reports the current queue depth and running-job count.
func (s *Server) Stats() Stats {
	return Stats{
		Queued:  len(s.queue),
		Running: int(s.metrics.jobsRunning.Value()),
	}
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// log emits one structured per-job log line; every line carries the job
// ID and name so a grep for job=j000042 reconstructs that job's history,
// and — when the submission carried an X-Request-ID — the request ID, so
// one logical job greps together across tqecc, coordinator, and worker.
func (s *Server) log(j *Job, event string, attrs ...any) {
	base := make([]any, 0, 6+len(attrs))
	base = append(base, "job", j.ID, "name", j.Name)
	if j.requestID != "" {
		base = append(base, "req_id", j.requestID)
	}
	s.cfg.Logger.Info(event, append(base, attrs...)...)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
