package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tqec/internal/obs"
)

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// newTestServer spins up a quiet service plus an httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = obs.NopLogger()
	}
	svc := New(context.Background(), cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit response %q: %v", raw, err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("response %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func del(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

// waitState polls until the job reaches a terminal state or the deadline
// passes, returning the last observed status.
func waitState(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st JobStatus
	for time.Now().Before(deadline) {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: http %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s still %s after %s", id, st.State, timeout)
	return st
}

func TestSubmitCompileAndResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, code := postJob(t, ts, `{"source":{"sample":"threecnot"},"options":{"mode":"full","drc":true}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: http %d", code)
	}
	st = waitState(t, ts, st.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Error)
	}

	var payload ResultPayload
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", &payload); code != http.StatusOK {
		t.Fatalf("result: http %d", code)
	}
	if payload.Report.PlacedVolume != 6 {
		t.Fatalf("placed volume = %d, want 6 (paper Fig. 1(e))", payload.Report.PlacedVolume)
	}
	if payload.DRC == nil || !payload.DRC.Clean() {
		t.Fatalf("expected a clean attached DRC report, got %+v", payload.DRC)
	}
	if payload.CacheKey == "" {
		t.Fatal("payload missing cache key")
	}
}

func TestCacheHitOnIdenticalSubmission(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	body := `{"source":{"sample":"threecnot"},"options":{"mode":"full","seeds":[1,2]}}`

	first, _ := postJob(t, ts, body)
	firstDone := waitState(t, ts, first.ID, 30*time.Second)
	if firstDone.State != StateDone {
		t.Fatalf("first job: %s (%s)", firstDone.State, firstDone.Error)
	}
	if firstDone.Cached {
		t.Fatal("first submission must not be a cache hit")
	}

	second, code := postJob(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("cached submit: http %d, want 200", code)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("second submission: cached=%t state=%s, want instant cached done", second.Cached, second.State)
	}
	if second.CacheKey != first.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", first.CacheKey, second.CacheKey)
	}
	if second.RunMS != 0 {
		t.Fatalf("cache-hit RunMS = %.1f, want 0 (no compile ran)", second.RunMS)
	}

	var m MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: http %d", code)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	// One pipeline execution total: the compile histogram saw exactly one
	// job even though two completed.
	if m.Compile.Count != 1 {
		t.Fatalf("compile histogram count = %d, want 1 (second job must not re-run)", m.Compile.Count)
	}
	// done and done_cached are disjoint: one compile ran, one replayed.
	if m.Jobs.Done != 1 {
		t.Fatalf("jobs done = %d, want 1 (cache replays count only in done_cached)", m.Jobs.Done)
	}
	if m.Jobs.DoneCached != 1 {
		t.Fatalf("jobs done_cached = %d, want 1", m.Jobs.DoneCached)
	}
	if len(m.Stages) == 0 {
		t.Fatal("expected per-stage histograms after a compile")
	}
	_ = svc
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	// A single worker busy on a slow compile leaves the second job queued,
	// so its result endpoint must 409.
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	slow, _ := postJob(t, ts, `{"source":{"bench":"rd84_142"},"options":{"effort":"high","skip_routing":true}}`)
	queued, _ := postJob(t, ts, `{"source":{"sample":"toffoli3"}}`)

	if code := getJSON(t, ts.URL+"/v1/jobs/"+queued.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of queued job: http %d, want 409", code)
	}
	// Drain: cancel both so cleanup is fast.
	del(t, ts.URL+"/v1/jobs/"+queued.ID)
	del(t, ts.URL+"/v1/jobs/"+slow.ID)
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/jobs/j999999", nil); code != http.StatusNotFound {
		t.Fatalf("status: http %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j999999/result", nil); code != http.StatusNotFound {
		t.Fatalf("result: http %d, want 404", code)
	}
	if code, _ := del(t, ts.URL+"/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Fatalf("cancel: http %d, want 404", code)
	}
}

func TestCancelFinishedJobConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, _ := postJob(t, ts, `{"source":{"sample":"threecnot"}}`)
	st = waitState(t, ts, st.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job: %s", st.State)
	}
	if code, body := del(t, ts.URL+"/v1/jobs/"+st.ID); code != http.StatusConflict {
		t.Fatalf("cancel done job: http %d (%s), want 409", code, body)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{"options":{}}`,                                      // no source
		`{"source":{"sample":"nope"}}`,                        // unknown sample
		`{"source":{"sample":"threecnot","text":"qubits 1"}}`, // two sources
		`{"source":{"sample":"threecnot"},"options":{"mode":"bogus"}}`,
		`{"source":{"sample":"threecnot"},"options":{"effort":"bogus"}}`,
		`{"source":{"bench":"nope"}}`,
		`not json`,
	}
	for _, body := range cases {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("submit %q: http %d, want 400", body, code)
		}
	}
}

func TestDrainingRejectsSubmits(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	if err := svc.Shutdown(contextWithTimeout(t, 10*time.Second)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, code := postJob(t, ts, `{"source":{"sample":"threecnot"}}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: http %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: http %d, want 503", code)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	st, _ := postJob(t, ts, `{"source":{"sample":"mixed4"},"options":{"seeds":[1,2,3]}}`)
	if err := svc.Shutdown(contextWithTimeout(t, 60*time.Second)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The job must have finished (drained), not been abandoned.
	j, ok := svc.jobByID(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	svc.mu.Lock()
	state := j.state
	svc.mu.Unlock()
	if state != StateDone {
		t.Fatalf("after drain, job state = %s, want done", state)
	}
}

func TestHealthzAndMetricsShape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var h HealthStatus
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
	if h.Version == "" {
		t.Fatal("healthz missing version")
	}
	if h.UptimeMS < 0 {
		t.Fatalf("healthz uptime_ms = %f, want >= 0", h.UptimeMS)
	}
	if h.QueueDepth != 0 {
		t.Fatalf("healthz queue_depth = %d, want 0 on an idle server", h.QueueDepth)
	}
	var m MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: http %d", code)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%+v", m) // snapshot must be serializable both ways
}

// TestMetricsPrometheusExposition drives a compile and then scrapes
// /metrics the way Prometheus would: Accept: text/plain must switch the
// endpoint from JSON to the text exposition format, with well-formed
// TYPE headers and le-cumulative bucket series.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, _ := postJob(t, ts, `{"source":{"sample":"threecnot"}}`)
	if st = waitState(t, ts, st.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain", ct)
	}
	for _, want := range []string{
		"# TYPE tqecd_jobs_submitted_total counter",
		"# TYPE tqecd_jobs_running gauge",
		"# TYPE tqecd_compile_ms histogram",
		"# TYPE tqecd_stage_ms histogram",
		"tqecd_jobs_submitted_total 1",
		"tqecd_jobs_done_total 1",
		`tqecd_compile_ms_bucket{le="+Inf"} 1`,
		"tqecd_compile_ms_count 1",
		`tqecd_stage_ms_count{stage="place"} 1`,
		"tqecd_anneal_moves_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Cumulative bucket monotonicity for the compile histogram.
	prev := int64(-1)
	buckets := 0
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "tqecd_compile_ms_bucket{") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket series not cumulative at %q", line)
		}
		prev = v
		buckets++
	}
	if buckets == 0 {
		t.Fatal("no compile_ms bucket lines")
	}

	// Without the Accept header the endpoint still answers JSON.
	var m MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK || m.Jobs.Submitted != 1 {
		t.Fatalf("JSON metrics: code %d, submitted %d", code, m.Jobs.Submitted)
	}
	if m.Pipeline.AnnealMoves < 0 || m.Pipeline.DualBridges < 0 {
		t.Fatal("pipeline counters missing from JSON snapshot")
	}
}

// TestDoneCountersDisjoint pins the jobs.done / jobs.done_cached
// relationship: a completed submission increments exactly one of them,
// so done + done_cached equals the number of successfully answered
// submissions.
func TestDoneCountersDisjoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"source":{"sample":"threecnot"}}`
	first, _ := postJob(t, ts, body)
	if st := waitState(t, ts, first.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("first job: %s", st.State)
	}
	for i := 0; i < 2; i++ { // two cache replays
		st, code := postJob(t, ts, body)
		if code != http.StatusOK || !st.Cached {
			t.Fatalf("replay %d: http %d cached=%t", i, code, st.Cached)
		}
	}
	var m MetricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: http %d", code)
	}
	if m.Jobs.Done != 1 || m.Jobs.DoneCached != 2 {
		t.Fatalf("done/done_cached = %d/%d, want 1/2 (disjoint)", m.Jobs.Done, m.Jobs.DoneCached)
	}
	if m.Jobs.Done+m.Jobs.DoneCached != m.Jobs.Submitted {
		t.Fatalf("done %d + done_cached %d != submitted %d",
			m.Jobs.Done, m.Jobs.DoneCached, m.Jobs.Submitted)
	}
}

// TestTraceEndpoint submits a traced job and fetches its span tree in
// both formats.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// An untraced job has no trace to serve.
	plain, _ := postJob(t, ts, `{"source":{"sample":"threecnot"}}`)
	waitState(t, ts, plain.ID, 30*time.Second)
	if code := getJSON(t, ts.URL+"/v1/jobs/"+plain.ID+"/trace", nil); code != http.StatusNotFound {
		t.Fatalf("trace of untraced job: http %d, want 404", code)
	}

	// A traced job must compile (no cache fast path) and record spans.
	traced, code := postJob(t, ts, `{"source":{"sample":"threecnot"},"trace":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("traced submit: http %d, want 202 (the cache must not answer traced jobs)", code)
	}
	if st := waitState(t, ts, traced.ID, 30*time.Second); st.State != StateDone {
		t.Fatalf("traced job: %s (%s)", st.State, st.Error)
	}

	var tree struct {
		Name     string `json:"name"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+traced.ID+"/trace", &tree); code != http.StatusOK {
		t.Fatalf("trace: http %d", code)
	}
	if tree.Name != "job:"+traced.ID {
		t.Fatalf("trace root = %q, want job:%s", tree.Name, traced.ID)
	}
	if len(tree.Children) == 0 {
		t.Fatal("trace has no spans")
	}
	stages := map[string]bool{}
	for _, c := range tree.Children {
		stages[c.Name] = true
	}
	// CompileBest wraps each restart in a seed span.
	if !stages["seed-1"] {
		t.Fatalf("trace missing seed span: %v", stages)
	}

	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+traced.ID+"/trace?format=chrome", &events); code != http.StatusOK {
		t.Fatalf("chrome trace: http %d", code)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("chrome event %q phase %q, want X", ev.Name, ev.Ph)
		}
		seen[ev.Name] = true
	}
	for _, want := range []string{"pdgraph", "place", "route"} {
		if !seen[want] {
			t.Fatalf("chrome trace missing stage %q (got %v)", want, seen)
		}
	}
}
