package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// newTestServer spins up a quiet service plus an httptest frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit response %q: %v", raw, err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("response %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func del(t *testing.T, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

// waitState polls until the job reaches a terminal state or the deadline
// passes, returning the last observed status.
func waitState(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var st JobStatus
	for time.Now().Before(deadline) {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: http %d", id, code)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s still %s after %s", id, st.State, timeout)
	return st
}

func TestSubmitCompileAndResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, code := postJob(t, ts, `{"source":{"sample":"threecnot"},"options":{"mode":"full","drc":true}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: http %d", code)
	}
	st = waitState(t, ts, st.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Error)
	}

	var payload ResultPayload
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/result", &payload); code != http.StatusOK {
		t.Fatalf("result: http %d", code)
	}
	if payload.Report.PlacedVolume != 6 {
		t.Fatalf("placed volume = %d, want 6 (paper Fig. 1(e))", payload.Report.PlacedVolume)
	}
	if payload.DRC == nil || !payload.DRC.Clean() {
		t.Fatalf("expected a clean attached DRC report, got %+v", payload.DRC)
	}
	if payload.CacheKey == "" {
		t.Fatal("payload missing cache key")
	}
}

func TestCacheHitOnIdenticalSubmission(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	body := `{"source":{"sample":"threecnot"},"options":{"mode":"full","seeds":[1,2]}}`

	first, _ := postJob(t, ts, body)
	firstDone := waitState(t, ts, first.ID, 30*time.Second)
	if firstDone.State != StateDone {
		t.Fatalf("first job: %s (%s)", firstDone.State, firstDone.Error)
	}
	if firstDone.Cached {
		t.Fatal("first submission must not be a cache hit")
	}

	second, code := postJob(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("cached submit: http %d, want 200", code)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("second submission: cached=%t state=%s, want instant cached done", second.Cached, second.State)
	}
	if second.CacheKey != first.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", first.CacheKey, second.CacheKey)
	}
	if second.RunMS != 0 {
		t.Fatalf("cache-hit RunMS = %.1f, want 0 (no compile ran)", second.RunMS)
	}

	var m metricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: http %d", code)
	}
	if m.Cache.Hits != 1 || m.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", m.Cache.Hits, m.Cache.Misses)
	}
	// One pipeline execution total: the compile histogram saw exactly one
	// job even though two completed.
	if m.Compile.Count != 1 {
		t.Fatalf("compile histogram count = %d, want 1 (second job must not re-run)", m.Compile.Count)
	}
	if m.Jobs.Done != 2 {
		t.Fatalf("jobs done = %d, want 2", m.Jobs.Done)
	}
	if m.Jobs.DoneCached != 1 {
		t.Fatalf("jobs done_cached = %d, want 1", m.Jobs.DoneCached)
	}
	if len(m.Stages) == 0 {
		t.Fatal("expected per-stage histograms after a compile")
	}
	_ = svc
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	// A single worker busy on a slow compile leaves the second job queued,
	// so its result endpoint must 409.
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	slow, _ := postJob(t, ts, `{"source":{"bench":"rd84_142"},"options":{"effort":"high","skip_routing":true}}`)
	queued, _ := postJob(t, ts, `{"source":{"sample":"toffoli3"}}`)

	if code := getJSON(t, ts.URL+"/v1/jobs/"+queued.ID+"/result", nil); code != http.StatusConflict {
		t.Fatalf("result of queued job: http %d, want 409", code)
	}
	// Drain: cancel both so cleanup is fast.
	del(t, ts.URL+"/v1/jobs/"+queued.ID)
	del(t, ts.URL+"/v1/jobs/"+slow.ID)
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if code := getJSON(t, ts.URL+"/v1/jobs/j999999", nil); code != http.StatusNotFound {
		t.Fatalf("status: http %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j999999/result", nil); code != http.StatusNotFound {
		t.Fatalf("result: http %d, want 404", code)
	}
	if code, _ := del(t, ts.URL+"/v1/jobs/j999999"); code != http.StatusNotFound {
		t.Fatalf("cancel: http %d, want 404", code)
	}
}

func TestCancelFinishedJobConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	st, _ := postJob(t, ts, `{"source":{"sample":"threecnot"}}`)
	st = waitState(t, ts, st.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job: %s", st.State)
	}
	if code, body := del(t, ts.URL+"/v1/jobs/"+st.ID); code != http.StatusConflict {
		t.Fatalf("cancel done job: http %d (%s), want 409", code, body)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`{"options":{}}`,                                      // no source
		`{"source":{"sample":"nope"}}`,                        // unknown sample
		`{"source":{"sample":"threecnot","text":"qubits 1"}}`, // two sources
		`{"source":{"sample":"threecnot"},"options":{"mode":"bogus"}}`,
		`{"source":{"sample":"threecnot"},"options":{"effort":"bogus"}}`,
		`{"source":{"bench":"nope"}}`,
		`not json`,
	}
	for _, body := range cases {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("submit %q: http %d, want 400", body, code)
		}
	}
}

func TestDrainingRejectsSubmits(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	if err := svc.Shutdown(contextWithTimeout(t, 10*time.Second)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, code := postJob(t, ts, `{"source":{"sample":"threecnot"}}`); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: http %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: http %d, want 503", code)
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	st, _ := postJob(t, ts, `{"source":{"sample":"mixed4"},"options":{"seeds":[1,2,3]}}`)
	if err := svc.Shutdown(contextWithTimeout(t, 60*time.Second)); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The job must have finished (drained), not been abandoned.
	j, ok := svc.jobByID(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	svc.mu.Lock()
	state := j.state
	svc.mu.Unlock()
	if state != StateDone {
		t.Fatalf("after drain, job state = %s, want done", state)
	}
}

func TestHealthzAndMetricsShape(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	var h map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, h)
	}
	var m metricsSnapshot
	if code := getJSON(t, ts.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: http %d", code)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%+v", m) // snapshot must be serializable both ways
}
