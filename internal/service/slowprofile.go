package service

import (
	"bytes"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// cpuProfileSlot serializes CPU profiling process-wide: runtime/pprof
// supports exactly one active CPU profile per process, and a second
// Server embedded in the same binary (tests, future multi-tenant
// setups) shares the same runtime.
var cpuProfileSlot atomic.Bool

// slowProfile is the flight-data recorder for one job: armed when the
// job starts running, it fires after the configured threshold and
// records a CPU profile of whatever the pipeline is doing until the job
// ends. The timer callback races the job finishing; the mutex and the
// stopped flag make arm/fire/stop linearizable in any order.
type slowProfile struct {
	s     *Server
	j     *Job
	timer *time.Timer

	mu      sync.Mutex
	buf     bytes.Buffer // guarded by mu
	started bool         // guarded by mu; profile running, slot held
	stopped bool         // guarded by mu; job ended, late fires are no-ops
}

// armSlowProfile starts the slow-job countdown for j. Returns a no-op
// handle when capture is disabled.
func (s *Server) armSlowProfile(j *Job) *slowProfile {
	if s.cfg.SlowProfileAfter <= 0 {
		return nil
	}
	p := &slowProfile{s: s, j: j}
	p.timer = time.AfterFunc(s.cfg.SlowProfileAfter, p.fire)
	return p
}

// fire runs in the timer goroutine once the job has been running for
// the threshold. Capture is best-effort: if another job already holds
// the process's one CPU-profile slot, this job skips (counted, logged)
// rather than queueing — a profile of the tail of a slow job is only
// useful if it covers that job's own work.
func (p *slowProfile) fire() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped {
		return
	}
	if !cpuProfileSlot.CompareAndSwap(false, true) {
		p.s.metrics.slowProfilesSkipped.Inc()
		p.s.log(p.j, "slow-profile-skipped", "after", p.s.cfg.SlowProfileAfter, "reason", "profiler busy")
		return
	}
	if err := pprof.StartCPUProfile(&p.buf); err != nil {
		// Lost a race with a non-registry profiler (e.g. the pprof debug
		// mux); release the slot and skip.
		cpuProfileSlot.Store(false)
		p.s.metrics.slowProfilesSkipped.Inc()
		p.s.log(p.j, "slow-profile-skipped", "after", p.s.cfg.SlowProfileAfter, "reason", err.Error())
		return
	}
	p.started = true
	p.s.metrics.slowProfilesStarted.Inc()
	p.s.log(p.j, "slow-profile-started", "after", p.s.cfg.SlowProfileAfter)
}

// stop disarms the countdown (or ends a running capture) when the job
// finishes, returning the profile bytes if one was recorded. Safe on a
// nil handle (capture disabled).
func (p *slowProfile) stop() []byte {
	if p == nil {
		return nil
	}
	p.timer.Stop()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	if !p.started {
		return nil
	}
	pprof.StopCPUProfile()
	cpuProfileSlot.Store(false)
	p.started = false
	return p.buf.Bytes()
}
