package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"tqec/internal/circuit"
	"tqec/internal/compress"
	"tqec/internal/obs"
)

// slowCompile holds the worker long enough for the slow-job threshold
// to fire, doing real work so the CPU profile has something to sample.
func slowCompile(d time.Duration) CompileFunc {
	return func(ctx context.Context, c *circuit.Circuit, opt compress.Options, seeds []int64, parallel int) (*compress.Result, error) {
		deadline := time.Now().Add(d)
		x := 1.0
		for time.Now().Before(deadline) {
			for i := 0; i < 1000; i++ {
				x = x*1.0000001 + float64(i)
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		_ = x
		return &compress.Result{Name: c.Name, Volume: 7, PlacedVolume: 7, SeedsTried: len(seeds)}, nil
	}
}

// postJobWithHeaders submits a job with extra request headers (the
// plain postJob helper cannot set them).
func postJobWithHeaders(t *testing.T, url, body string, headers map[string]string) (JobStatus, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("submit response %q: %v", raw, err)
		}
	}
	return st, resp.StatusCode
}

func TestSlowProfileCapture(t *testing.T) {
	svc, ts := newTestServer(t, Config{
		Workers:          1,
		SlowProfileAfter: 20 * time.Millisecond,
		Compile:          slowCompile(250 * time.Millisecond),
	})
	_ = svc
	st, code := postJob(t, ts, `{"source":{"sample":"threecnot"}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: http %d", code)
	}
	st = waitState(t, ts, st.ID, 30*time.Second)
	if st.State != StateDone {
		t.Fatalf("job state = %s (err %q), want done", st.State, st.Error)
	}
	if !st.Profiled {
		t.Fatal("status.Profiled = false for a job that crossed the threshold")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: http %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("profile content type = %q", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, st.ID+".pprof") {
		t.Fatalf("profile disposition = %q, want filename %s.pprof", cd, st.ID)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) == 0 {
		t.Fatal("profile body is empty")
	}
}

func TestSlowProfileNotCrossed(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:          1,
		SlowProfileAfter: time.Hour,
		Compile:          instantCompile,
	})
	st, _ := postJob(t, ts, `{"source":{"sample":"threecnot"}}`)
	st = waitState(t, ts, st.ID, 10*time.Second)
	if st.Profiled {
		t.Fatal("fast job reports Profiled")
	}
	var e errorResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/profile", &e); code != http.StatusNotFound {
		t.Fatalf("profile for fast job: http %d, want 404", code)
	}
}

// TestSubmitTraceparentLink: a traced submission carrying a valid
// traceparent header produces a span tree linked into the caller's
// distributed trace; a malformed header degrades to a fresh local root
// without failing the job.
func TestSubmitTraceparentLink(t *testing.T) {
	var logBuf bytes.Buffer
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Compile: instantCompile,
		Logger:  slog.New(slog.NewTextHandler(&logBuf, nil)),
	})

	tc := obs.NewTraceContext()
	st, code := postJobWithHeaders(t, ts.URL,
		`{"source":{"sample":"threecnot"},"trace":true}`,
		map[string]string{
			obs.TraceparentHeader: tc.Traceparent(),
			obs.RequestIDHeader:   "req-linktest",
		})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: http %d", code)
	}
	st = waitState(t, ts, st.ID, 10*time.Second)
	if st.State != StateDone {
		t.Fatalf("job state = %s (err %q)", st.State, st.Error)
	}

	var tree obs.SpanJSON
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/trace", &tree); code != http.StatusOK {
		t.Fatalf("trace: http %d", code)
	}
	if tree.TraceID != tc.TraceID || tree.ParentSpanID != tc.SpanID {
		t.Fatalf("trace identity = %q/%q, want %q/%q",
			tree.TraceID, tree.ParentSpanID, tc.TraceID, tc.SpanID)
	}
	if tree.EpochUnixUS == 0 {
		t.Fatal("linked trace has no epoch anchor for stitching")
	}
	if !strings.Contains(logBuf.String(), "req_id=req-linktest") {
		t.Error("job log lines not correlated with the X-Request-ID")
	}

	// Malformed header: warn + fresh local root, job still runs.
	st2, code := postJobWithHeaders(t, ts.URL,
		`{"source":{"sample":"threecnot"},"trace":true}`,
		map[string]string{obs.TraceparentHeader: "00-garbage-01"})
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit with bad traceparent: http %d", code)
	}
	st2 = waitState(t, ts, st2.ID, 10*time.Second)
	if st2.State != StateDone {
		t.Fatalf("job with bad traceparent = %s (err %q)", st2.State, st2.Error)
	}
	var tree2 obs.SpanJSON
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st2.ID+"/trace", &tree2); code != http.StatusOK {
		t.Fatalf("trace: http %d", code)
	}
	if tree2.TraceID != "" || tree2.ParentSpanID != "" {
		t.Fatalf("malformed header leaked identity %q/%q into the trace", tree2.TraceID, tree2.ParentSpanID)
	}
	if !strings.Contains(logBuf.String(), "bad traceparent") {
		t.Error("malformed traceparent not logged")
	}
}
