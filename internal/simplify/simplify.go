// Package simplify implements the I-shaped simplification of the paper
// (§3.2, Fig. 7–10): whenever the control-side current module of a CNOT
// carries an initialization or measurement, the two control-side modules of
// the gate's dual net merge into one primal structure via an x-axis bridge.
//
// The merge rewrites the PD graph's pass-through relation using *parts*:
// the merging net's two control passes collapse into a single pass through
// the new bridge part, while every other net that crossed either module
// keeps its pass through that module's residual part. This part structure
// is exactly what makes iterative dual bridging safe afterwards (paper
// §3.4, Fig. 14): nets may only dual-bridge inside a common part.
package simplify

import (
	"fmt"
	"sort"
	"strings"

	"tqec/internal/pdgraph"
)

// Options configures the simplification.
type Options struct {
	// MeasurementSide also merges a control pair whose innovative module
	// carries the rail's measurement (the symmetric I/M case). The paper's
	// examples exercise the initialization side; both are I/M.
	MeasurementSide bool
	// Disabled skips all merges, leaving the raw module pass-through
	// relation. Used by the dual-only baseline of Hsu et al. (DAC'21),
	// which has no I-shaped simplification stage.
	Disabled bool
}

// Merge records one I-shaped merge: net Net's control pair (First, Second)
// collapsed into bridge part Part.
type Merge struct {
	Net    int
	First  int // module ID with the I/M
	Second int // innovative module ID
	Part   int // bridge part key
}

// Result is the simplified PD graph view.
type Result struct {
	Graph  *pdgraph.Graph
	Merges []Merge

	parent  []int         // union-find over modules (x-axis groups)
	mergeOf map[int]int   // net ID -> index into Merges
	parts   map[int][]int // part key -> net IDs passing through it
}

// Run performs the O(n) I-shaped scan over all nets.
func Run(g *pdgraph.Graph, opt Options) *Result {
	r := &Result{
		Graph:   g,
		parent:  make([]int, len(g.Modules)),
		mergeOf: make(map[int]int),
		parts:   make(map[int][]int),
	}
	for i := range r.parent {
		r.parent[i] = i
	}
	for _, n := range g.Nets {
		if opt.Disabled {
			break
		}
		first := g.Modules[n.ControlFirst]
		second := g.Modules[n.ControlSecond]
		eligible := first.HasIM() || (opt.MeasurementSide && second.HasIM())
		if !eligible {
			continue
		}
		part := len(g.Modules) + len(r.Merges)
		r.mergeOf[n.ID] = len(r.Merges)
		r.Merges = append(r.Merges, Merge{Net: n.ID, First: n.ControlFirst, Second: n.ControlSecond, Part: part})
		r.union(n.ControlFirst, n.ControlSecond)
	}
	// Build the part → nets index.
	for _, n := range g.Nets {
		for _, p := range r.NetParts(n.ID) {
			r.parts[p] = append(r.parts[p], n.ID)
		}
	}
	return r
}

func (r *Result) find(m int) int {
	for r.parent[m] != m {
		r.parent[m] = r.parent[r.parent[m]]
		m = r.parent[m]
	}
	return m
}

func (r *Result) union(a, b int) {
	ra, rb := r.find(a), r.find(b)
	if ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		r.parent[rb] = ra
	}
}

// NumMerges returns the number of I-shaped merges performed.
func (r *Result) NumMerges() int { return len(r.Merges) }

// Merged reports whether net id's control pair was merged.
func (r *Result) Merged(net int) bool {
	_, ok := r.mergeOf[net]
	return ok
}

// GroupOf returns the x-axis group representative of a module.
func (r *Result) GroupOf(module int) int { return r.find(module) }

// SameGroup reports whether two modules were merged into one structure.
func (r *Result) SameGroup(a, b int) bool { return r.find(a) == r.find(b) }

// Groups returns the module groups, each sorted, ordered by representative.
func (r *Result) Groups() [][]int {
	byRep := map[int][]int{}
	for m := range r.parent {
		rep := r.find(m)
		byRep[rep] = append(byRep[rep], m)
	}
	reps := make([]int, 0, len(byRep))
	for rep := range byRep {
		reps = append(reps, rep)
	}
	sort.Ints(reps)
	out := make([][]int, 0, len(reps))
	for _, rep := range reps {
		ms := byRep[rep]
		sort.Ints(ms)
		out = append(out, ms)
	}
	return out
}

// NetParts returns the part keys net id passes through after
// simplification: [bridge, target] for merged nets, [controlFirst,
// controlSecond, target] residual module keys otherwise. Part keys below
// len(Graph.Modules) are residual module IDs; larger keys are bridges.
func (r *Result) NetParts(net int) []int {
	n := r.Graph.Nets[net]
	if mi, ok := r.mergeOf[net]; ok {
		return []int{r.Merges[mi].Part, n.Target}
	}
	return []int{n.ControlFirst, n.ControlSecond, n.Target}
}

// PartNets returns the nets passing through the given part key.
func (r *Result) PartNets(part int) []int {
	return append([]int(nil), r.parts[part]...)
}

// Parts lists all part keys that at least one net passes, sorted.
func (r *Result) Parts() []int {
	keys := make([]int, 0, len(r.parts))
	for k := range r.parts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// IsBridgePart reports whether a part key denotes an I-shape bridge.
func (r *Result) IsBridgePart(part int) bool { return part >= len(r.Graph.Modules) }

// Validate checks the part bookkeeping invariants: every merged net has
// exactly one bridge part, parts reference valid nets, and the braiding
// relation is preserved — each net still relates to exactly the module
// groups it passed before simplification.
func (r *Result) Validate() error {
	g := r.Graph
	for _, n := range g.Nets {
		parts := r.NetParts(n.ID)
		bridges := 0
		for _, p := range parts {
			if r.IsBridgePart(p) {
				bridges++
			}
		}
		if r.Merged(n.ID) && bridges != 1 {
			return fmt.Errorf("simplify: merged net %d has %d bridge parts", n.ID, bridges)
		}
		if !r.Merged(n.ID) && bridges != 0 {
			return fmt.Errorf("simplify: unmerged net %d has bridge parts", n.ID)
		}
		// Braiding preservation: the groups reachable through the net's
		// parts must equal the groups of its original modules.
		want := map[int]bool{}
		for _, m := range n.Modules() {
			want[r.find(m)] = true
		}
		got := map[int]bool{}
		for _, p := range parts {
			for _, m := range r.PartModules(p) {
				got[r.find(m)] = true
			}
		}
		if len(want) != len(got) {
			return fmt.Errorf("simplify: net %d group relation changed: %v vs %v", n.ID, want, got)
		}
		for rep := range want {
			if !got[rep] {
				return fmt.Errorf("simplify: net %d lost group %d", n.ID, rep)
			}
		}
	}
	return nil
}

// PartModules returns the modules making up a part: both control modules
// for a bridge part, or the single residual module.
func (r *Result) PartModules(part int) []int {
	if r.IsBridgePart(part) {
		m := r.Merges[part-len(r.Graph.Modules)]
		return []int{m.First, m.Second}
	}
	return []int{part}
}

// Dump renders groups and per-net parts for debugging.
func (r *Result) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "groups (%d):\n", len(r.Groups()))
	for _, grp := range r.Groups() {
		fmt.Fprintf(&sb, "  %v\n", grp)
	}
	sb.WriteString("net parts:\n")
	for _, n := range r.Graph.Nets {
		fmt.Fprintf(&sb, "  d%d: %v\n", n.ID, r.NetParts(n.ID))
	}
	return sb.String()
}
