package simplify

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"tqec/internal/circuit"
	"tqec/internal/decompose"
	"tqec/internal/icm"
	"tqec/internal/pdgraph"
	"tqec/internal/revlib"
)

func buildGraph(t *testing.T, c *circuit.Circuit) *pdgraph.Graph {
	t.Helper()
	rep, err := icm.FromCliffordT(c)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pdgraph.New(rep)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func threeCNOT(t *testing.T) *pdgraph.Graph {
	t.Helper()
	c, err := revlib.ParseString(revlib.Samples["threecnot"])
	if err != nil {
		t.Fatal(err)
	}
	return buildGraph(t, c)
}

// TestFig10Merges reproduces the paper's Fig. 10(a): the three control
// pairs all merge, yielding groups {p0,p1}={m0,m3}, {p2,p5}={m1,m5},
// {p3,p4}={m2,m4}.
func TestFig10Merges(t *testing.T) {
	g := threeCNOT(t)
	r := Run(g, Options{})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumMerges() != 3 {
		t.Fatalf("merges = %d, want 3", r.NumMerges())
	}
	groups := r.Groups()
	want := [][]int{{0, 3}, {1, 5}, {2, 4}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
	for _, n := range g.Nets {
		if !r.Merged(n.ID) {
			t.Errorf("net %d not merged", n.ID)
		}
	}
}

// TestFig14PartRelation reproduces §3.4: after simplification, d0 and d1
// share the residual p2 part (m1) and may dual-bridge there, while d0 and
// d2 share no part (the original p1 was split).
func TestFig14PartRelation(t *testing.T) {
	g := threeCNOT(t)
	r := Run(g, Options{})
	parts0 := r.NetParts(0)
	parts1 := r.NetParts(1)
	parts2 := r.NetParts(2)
	common := func(a, b []int) []int {
		m := map[int]bool{}
		for _, x := range a {
			m[x] = true
		}
		var out []int
		for _, x := range b {
			if m[x] {
				out = append(out, x)
			}
		}
		return out
	}
	if got := common(parts0, parts1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("d0∩d1 = %v, want [1] (residual p2)", got)
	}
	if got := common(parts0, parts2); len(got) != 0 {
		t.Fatalf("d0∩d2 = %v, want empty (split p1 separates them)", got)
	}
	if got := common(parts1, parts2); len(got) != 0 {
		t.Fatalf("d1∩d2 = %v, want empty", got)
	}
	// The shared part is a residual module, not a bridge.
	if r.IsBridgePart(1) {
		t.Fatal("module part misclassified as bridge")
	}
	// Merged nets have exactly two parts: bridge + target.
	if len(parts0) != 2 || !r.IsBridgePart(parts0[0]) {
		t.Fatalf("d0 parts = %v", parts0)
	}
}

func TestPartNetsIndex(t *testing.T) {
	g := threeCNOT(t)
	r := Run(g, Options{})
	if got := r.PartNets(1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("nets through residual p2 = %v, want [0 1]", got)
	}
	// Bridge part of d2 holds only d2.
	parts2 := r.NetParts(2)
	if got := r.PartNets(parts2[0]); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("nets through d2 bridge = %v", got)
	}
	// Mutating the returned slice must not corrupt the index.
	got := r.PartNets(1)
	got[0] = 99
	if r.PartNets(1)[0] == 99 {
		t.Fatal("PartNets must copy")
	}
}

func TestNoMergeWithoutIM(t *testing.T) {
	// Interior control pairs (no I/M on the current module) must not merge.
	c := circuit.New("interior", 2)
	c.AppendNew(circuit.CNOT, 1, 0) // pair (col0, col1): merges
	c.AppendNew(circuit.CNOT, 1, 0) // pair (col1, col2): col1 interior
	c.AppendNew(circuit.CNOT, 1, 0) // pair (col2, col3): col2 interior...
	g := buildGraph(t, c)
	r := Run(g, Options{})
	if r.NumMerges() != 1 {
		t.Fatalf("merges = %d, want 1 (only the initialization-side pair)", r.NumMerges())
	}
	// With the measurement side enabled, the final pair (col2, col3=last,
	// carries measurement) also merges.
	r2 := Run(g, Options{MeasurementSide: true})
	if r2.NumMerges() != 2 {
		t.Fatalf("merges with measurement side = %d, want 2", r2.NumMerges())
	}
	if err := r2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSameGroup(t *testing.T) {
	g := threeCNOT(t)
	r := Run(g, Options{})
	if !r.SameGroup(0, 3) || !r.SameGroup(1, 5) || !r.SameGroup(2, 4) {
		t.Fatal("expected merges missing")
	}
	if r.SameGroup(0, 1) || r.SameGroup(3, 2) {
		t.Fatal("cross-group merge")
	}
	if r.GroupOf(3) != 0 {
		t.Fatalf("representative of 3 = %d, want 0", r.GroupOf(3))
	}
}

func TestPartModules(t *testing.T) {
	g := threeCNOT(t)
	r := Run(g, Options{})
	bridge := r.NetParts(0)[0]
	ms := r.PartModules(bridge)
	if !reflect.DeepEqual(ms, []int{0, 3}) {
		t.Fatalf("bridge modules = %v", ms)
	}
	if got := r.PartModules(1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("residual modules = %v", got)
	}
}

func TestPartsSorted(t *testing.T) {
	g := threeCNOT(t)
	r := Run(g, Options{})
	parts := r.Parts()
	for i := 1; i < len(parts); i++ {
		if parts[i] <= parts[i-1] {
			t.Fatalf("parts not sorted: %v", parts)
		}
	}
}

func TestLinearTimeOverRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		c := circuit.Random(rng, 5, 40)
		res, err := decompose.ToCliffordT(c)
		if err != nil {
			t.Fatal(err)
		}
		g := buildGraph(t, res.Circuit)
		r := Run(g, Options{MeasurementSide: true})
		if err := r.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Merge count is bounded by the net count.
		if r.NumMerges() > len(g.Nets) {
			t.Fatalf("trial %d: more merges than nets", trial)
		}
	}
}

func TestDump(t *testing.T) {
	g := threeCNOT(t)
	r := Run(g, Options{})
	out := r.Dump()
	if !strings.Contains(out, "groups (3):") || !strings.Contains(out, "d0:") {
		t.Fatalf("dump: %s", out)
	}
}
