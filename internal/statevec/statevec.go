// Package statevec is a dense state-vector simulator for small quantum
// circuits. The compression pipeline never needs it at runtime; it exists
// to *verify* the preprocessing stage: gate decompositions (MCT → Toffoli
// → Clifford+T) must preserve the circuit unitary up to global phase, and
// the reversible-logic lowering of the revlib reader must implement the
// intended boolean function. Pure stdlib, exact up to float64 rounding.
package statevec

import (
	"fmt"
	"math"
	"math/cmplx"

	"tqec/internal/circuit"
)

// State is a normalized 2^n-dimensional state vector; amplitude order is
// little-endian in qubit index (bit i of the basis index is qubit i).
type State struct {
	N   int
	Amp []complex128
}

// NewState prepares |basis⟩ on n qubits.
func NewState(n int, basis uint64) (*State, error) {
	if n < 1 || n > 20 {
		return nil, fmt.Errorf("statevec: unsupported qubit count %d", n)
	}
	if basis >= 1<<uint(n) {
		return nil, fmt.Errorf("statevec: basis state %d out of range for %d qubits", basis, n)
	}
	s := &State{N: n, Amp: make([]complex128, 1<<uint(n))}
	s.Amp[basis] = 1
	return s, nil
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	return &State{N: s.N, Amp: append([]complex128(nil), s.Amp...)}
}

// Norm returns the 2-norm of the state (1 for valid states).
func (s *State) Norm() float64 {
	sum := 0.0
	for _, a := range s.Amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

// applySingle applies the 2×2 matrix [[a,b],[c,d]] to qubit q.
func (s *State) applySingle(q int, a, b, c, d complex128) {
	bit := uint64(1) << uint(q)
	for i := uint64(0); i < uint64(len(s.Amp)); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		v0, v1 := s.Amp[i], s.Amp[j]
		s.Amp[i] = a*v0 + b*v1
		s.Amp[j] = c*v0 + d*v1
	}
}

// controlled reports whether all control bits are set in basis index i.
func controlled(i uint64, controls []int) bool {
	for _, c := range controls {
		if i&(1<<uint(c)) == 0 {
			return false
		}
	}
	return true
}

// Apply applies one gate to the state.
func (s *State) Apply(g circuit.Gate) error {
	if err := g.Validate(s.N); err != nil {
		return err
	}
	invSqrt2 := complex(1/math.Sqrt2, 0)
	switch g.Kind {
	case circuit.X:
		s.applySingle(g.Target, 0, 1, 1, 0)
	case circuit.Z:
		s.applySingle(g.Target, 1, 0, 0, -1)
	case circuit.H:
		s.applySingle(g.Target, invSqrt2, invSqrt2, invSqrt2, -invSqrt2)
	case circuit.S:
		s.applySingle(g.Target, 1, 0, 0, complex(0, 1))
	case circuit.Sdg:
		s.applySingle(g.Target, 1, 0, 0, complex(0, -1))
	case circuit.T:
		s.applySingle(g.Target, 1, 0, 0, cmplx.Exp(complex(0, math.Pi/4)))
	case circuit.Tdg:
		s.applySingle(g.Target, 1, 0, 0, cmplx.Exp(complex(0, -math.Pi/4)))
	case circuit.CNOT, circuit.Toffoli, circuit.MCT:
		bit := uint64(1) << uint(g.Target)
		for i := uint64(0); i < uint64(len(s.Amp)); i++ {
			if i&bit != 0 || !controlled(i, g.Controls) {
				continue
			}
			j := i | bit
			s.Amp[i], s.Amp[j] = s.Amp[j], s.Amp[i]
		}
	case circuit.CZ:
		for i := uint64(0); i < uint64(len(s.Amp)); i++ {
			if i&(1<<uint(g.Target)) != 0 && controlled(i, g.Controls) {
				s.Amp[i] = -s.Amp[i]
			}
		}
	default:
		return fmt.Errorf("statevec: unsupported gate %v", g)
	}
	return nil
}

// Run applies a whole circuit to |basis⟩ and returns the final state.
func Run(c *circuit.Circuit, basis uint64) (*State, error) {
	s, err := NewState(c.Width, basis)
	if err != nil {
		return nil, err
	}
	for _, g := range c.Gates {
		if err := s.Apply(g); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Fidelity returns |⟨a|b⟩| for two states of equal dimension.
func Fidelity(a, b *State) (float64, error) {
	if a.N != b.N {
		return 0, fmt.Errorf("statevec: dimension mismatch %d vs %d", a.N, b.N)
	}
	var ip complex128
	for i := range a.Amp {
		ip += cmplx.Conj(a.Amp[i]) * b.Amp[i]
	}
	return cmplx.Abs(ip), nil
}

// EquivalentUpToGlobalPhase reports whether two circuits implement the same
// unitary up to global phase. The check enumerates all basis inputs over
// the *shared* qubits; extra qubits of the wider circuit are clean work
// ancillas pinned to |0⟩ (the convention for decompositions like the MCT
// V-chain, which requires and restores clean ancillas). tol is the
// fidelity slack (e.g. 1e-9).
func EquivalentUpToGlobalPhase(a, b *circuit.Circuit, tol float64) (bool, error) {
	n := a.Width
	if b.Width > n {
		n = b.Width
	}
	shared := a.Width
	if b.Width < shared {
		shared = b.Width
	}
	if n > 16 {
		return false, fmt.Errorf("statevec: %d qubits too many for exhaustive check", n)
	}
	wide := func(c *circuit.Circuit) *circuit.Circuit {
		if c.Width == n {
			return c
		}
		w := c.Clone()
		w.Width = n
		w.Labels = nil
		return w
	}
	wa, wb := wide(a), wide(b)
	var refPhase complex128
	havePhase := false
	for basis := uint64(0); basis < 1<<uint(shared); basis++ {
		sa, err := Run(wa, basis)
		if err != nil {
			return false, err
		}
		sb, err := Run(wb, basis)
		if err != nil {
			return false, err
		}
		f, err := Fidelity(sa, sb)
		if err != nil {
			return false, err
		}
		if f < 1-tol {
			return false, nil
		}
		// Track the relative phase ⟨a|b⟩ and require it to be constant
		// across basis states (a true *global* phase).
		var ip complex128
		for i := range sa.Amp {
			ip += cmplx.Conj(sa.Amp[i]) * sb.Amp[i]
		}
		if !havePhase {
			refPhase = ip
			havePhase = true
		} else if cmplx.Abs(ip-refPhase) > 1e-6 {
			return false, nil
		}
	}
	return true, nil
}

// TruthTable evaluates a reversible (X/CNOT/Toffoli/MCT-only) circuit as a
// classical permutation of basis states.
func TruthTable(c *circuit.Circuit) ([]uint64, error) {
	for _, g := range c.Gates {
		switch g.Kind {
		case circuit.X, circuit.CNOT, circuit.Toffoli, circuit.MCT:
		default:
			return nil, fmt.Errorf("statevec: gate %v is not classical-reversible", g)
		}
	}
	if c.Width > 20 {
		return nil, fmt.Errorf("statevec: %d qubits too many for a truth table", c.Width)
	}
	out := make([]uint64, 1<<uint(c.Width))
	for in := range out {
		v := uint64(in)
		for _, g := range c.Gates {
			if controlled(v, g.Controls) {
				v ^= 1 << uint(g.Target)
			}
		}
		out[in] = v
	}
	return out, nil
}
