package statevec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tqec/internal/circuit"
	"tqec/internal/decompose"
	"tqec/internal/revlib"
)

func TestNewStateBasics(t *testing.T) {
	s, err := NewState(2, 0b10)
	if err != nil {
		t.Fatal(err)
	}
	if s.Amp[2] != 1 || s.Norm() != 1 {
		t.Fatalf("state: %+v", s)
	}
	if _, err := NewState(0, 0); err == nil {
		t.Fatal("zero qubits accepted")
	}
	if _, err := NewState(2, 4); err == nil {
		t.Fatal("basis out of range accepted")
	}
	if _, err := NewState(21, 0); err == nil {
		t.Fatal("oversized register accepted")
	}
}

func TestPauliX(t *testing.T) {
	c := circuit.New("x", 1)
	c.AppendNew(circuit.X, 0)
	s, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Amp[1] != 1 {
		t.Fatalf("X|0> = %v", s.Amp)
	}
}

func TestHadamardSuperposition(t *testing.T) {
	c := circuit.New("h", 1)
	c.AppendNew(circuit.H, 0)
	s, err := Run(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt2
	if math.Abs(real(s.Amp[0])-want) > 1e-12 || math.Abs(real(s.Amp[1])-want) > 1e-12 {
		t.Fatalf("H|0> = %v", s.Amp)
	}
	// H² = I.
	c.AppendNew(circuit.H, 0)
	s, _ = Run(c, 0)
	if math.Abs(real(s.Amp[0])-1) > 1e-12 {
		t.Fatalf("H²|0> = %v", s.Amp)
	}
}

func TestSTRelations(t *testing.T) {
	// T² = S, S² = Z (checked on |+> to see the phase).
	t2 := circuit.New("tt", 1)
	t2.AppendNew(circuit.H, 0)
	t2.AppendNew(circuit.T, 0)
	t2.AppendNew(circuit.T, 0)
	sC := circuit.New("s", 1)
	sC.AppendNew(circuit.H, 0)
	sC.AppendNew(circuit.S, 0)
	ok, err := EquivalentUpToGlobalPhase(t2, sC, 1e-9)
	if err != nil || !ok {
		t.Fatalf("T² != S: %v %v", ok, err)
	}
	s2 := circuit.New("ss", 1)
	s2.AppendNew(circuit.S, 0)
	s2.AppendNew(circuit.S, 0)
	zC := circuit.New("z", 1)
	zC.AppendNew(circuit.Z, 0)
	ok, err = EquivalentUpToGlobalPhase(s2, zC, 1e-9)
	if err != nil || !ok {
		t.Fatalf("S² != Z: %v %v", ok, err)
	}
	// T·T† = I.
	tdg := circuit.New("ttdg", 1)
	tdg.AppendNew(circuit.T, 0)
	tdg.AppendNew(circuit.Tdg, 0)
	id := circuit.New("id", 1)
	ok, err = EquivalentUpToGlobalPhase(tdg, id, 1e-9)
	if err != nil || !ok {
		t.Fatalf("T·T† != I: %v %v", ok, err)
	}
	sdg := circuit.New("ssdg", 1)
	sdg.AppendNew(circuit.S, 0)
	sdg.AppendNew(circuit.Sdg, 0)
	ok, err = EquivalentUpToGlobalPhase(sdg, id, 1e-9)
	if err != nil || !ok {
		t.Fatalf("S·S† != I: %v %v", ok, err)
	}
}

func TestCZEqualsHCNOTH(t *testing.T) {
	cz := circuit.New("cz", 2)
	cz.AppendNew(circuit.CZ, 1, 0)
	hch := circuit.New("hch", 2)
	hch.AppendNew(circuit.H, 1)
	hch.AppendNew(circuit.CNOT, 1, 0)
	hch.AppendNew(circuit.H, 1)
	ok, err := EquivalentUpToGlobalPhase(cz, hch, 1e-9)
	if err != nil || !ok {
		t.Fatalf("CZ != H·CNOT·H: %v %v", ok, err)
	}
}

// TestToffoliDecompositionExact verifies the 7T+6CNOT+2H network used by
// the preprocess stage implements Toffoli exactly (up to global phase).
func TestToffoliDecompositionExact(t *testing.T) {
	tof := circuit.New("tof", 3)
	tof.AppendNew(circuit.Toffoli, 2, 0, 1)
	res, err := decompose.ToCliffordT(tof)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EquivalentUpToGlobalPhase(tof, res.Circuit, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Toffoli decomposition is not unitarily equivalent")
	}
}

// TestMCTDecompositionExact verifies the V-chain lowering for 3–5 controls
// (work ancillas start and end in |0⟩, so the wide-identity convention of
// EquivalentUpToGlobalPhase applies).
func TestMCTDecompositionExact(t *testing.T) {
	for k := 3; k <= 5; k++ {
		mct := circuit.New("mct", k+1)
		controls := make([]int, k)
		for i := range controls {
			controls[i] = i
		}
		mct.AppendNew(circuit.MCT, k, controls...)
		res, err := decompose.ToCliffordT(mct)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := EquivalentUpToGlobalPhase(mct, res.Circuit, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("MCT-%d decomposition is not unitarily equivalent", k)
		}
	}
}

// TestFredkinLoweringTruthTable verifies the revlib reader's controlled-
// swap lowering as a classical permutation.
func TestFredkinLoweringTruthTable(t *testing.T) {
	c, err := revlib.ParseString(".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	tt, err := TruthTable(c)
	if err != nil {
		t.Fatal(err)
	}
	for in, out := range tt {
		a := uint64(in) & 1
		b := (uint64(in) >> 1) & 1
		cc := (uint64(in) >> 2) & 1
		wb, wc := b, cc
		if a == 1 {
			wb, wc = cc, b
		}
		want := a | wb<<1 | wc<<2
		if out != want {
			t.Fatalf("fredkin(%03b) = %03b, want %03b", in, out, want)
		}
	}
}

func TestTruthTableRejectsNonClassical(t *testing.T) {
	c := circuit.New("h", 1)
	c.AppendNew(circuit.H, 0)
	if _, err := TruthTable(c); err == nil {
		t.Fatal("H accepted in truth table")
	}
}

func TestRandomCircuitsPreserveNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := circuit.Random(rng, 4, 30)
		s, err := Run(c, uint64(rng.Intn(16)))
		if err != nil {
			return false
		}
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionEquivalenceOnRandomReversibleCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 6; trial++ {
		// Reversible circuits without Pauli gates (X/Z drops are frame
		// re-interpretations, not unitary identities, so keep them out of
		// a unitary-equivalence test).
		c := circuit.New("rev", 4)
		for i := 0; i < 6; i++ {
			a, b2, d := rng.Intn(4), rng.Intn(4), rng.Intn(4)
			for b2 == a {
				b2 = rng.Intn(4)
			}
			for d == a || d == b2 {
				d = rng.Intn(4)
			}
			if rng.Intn(2) == 0 {
				c.AppendNew(circuit.CNOT, a, b2)
			} else {
				c.AppendNew(circuit.Toffoli, a, b2, d)
			}
		}
		res, err := decompose.ToCliffordT(c)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := EquivalentUpToGlobalPhase(c, res.Circuit, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: lowering changed semantics", trial)
		}
	}
}

func TestFidelity(t *testing.T) {
	a, _ := NewState(1, 0)
	b, _ := NewState(1, 1)
	f, err := Fidelity(a, b)
	if err != nil || f != 0 {
		t.Fatalf("orthogonal fidelity = %f, %v", f, err)
	}
	f, _ = Fidelity(a, a)
	if math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity = %f", f)
	}
	c, _ := NewState(2, 0)
	if _, err := Fidelity(a, c); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestEquivalentRejectsDifferentCircuits(t *testing.T) {
	x := circuit.New("x", 1)
	x.AppendNew(circuit.X, 0)
	z := circuit.New("z", 1)
	z.AppendNew(circuit.Z, 0)
	ok, err := EquivalentUpToGlobalPhase(x, z, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("X equivalent to Z?!")
	}
	// Same action on every basis state but with basis-dependent phases is
	// NOT a global-phase equivalence: S vs identity.
	s := circuit.New("s", 1)
	s.AppendNew(circuit.S, 0)
	id := circuit.New("id", 1)
	ok, err = EquivalentUpToGlobalPhase(s, id, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("S equivalent to identity?!")
	}
}

func TestApplyRejectsInvalidGate(t *testing.T) {
	s, _ := NewState(1, 0)
	if err := s.Apply(circuit.NewGate(circuit.CNOT, 0, 5)); err == nil {
		t.Fatal("invalid gate accepted")
	}
}

func TestClone(t *testing.T) {
	s, _ := NewState(1, 0)
	c := s.Clone()
	c.Amp[0] = 0
	if s.Amp[0] != 1 {
		t.Fatal("clone aliases")
	}
}
