package store

import "container/list"

// Eviction is one entry pushed out of a ByteLRU by its bounds.
type Eviction struct {
	Key  string
	Size int64
}

// ByteLRU is the shared size-accounting core of the result caches: it
// tracks recency and byte footprint for a set of keyed entries and
// evicts least-recently-used entries past an entry-count or byte bound.
// It stores no values — callers keep their own key→value map (an
// in-memory payload map, or files on disk) and apply the returned
// evictions to it. ByteLRU is not internally locked; callers serialize
// access under their own mutex.
type ByteLRU struct {
	maxEntries int        // <= 0: unbounded by count
	maxBytes   int64      // <= 0: unbounded by size
	order      *list.List // front = most recently used
	entries    map[string]*list.Element
	bytes      int64
}

type lruEntry struct {
	key  string
	size int64
}

// NewByteLRU builds an empty LRU with the given bounds; zero or negative
// bounds are unlimited in that dimension.
func NewByteLRU(maxEntries int, maxBytes int64) *ByteLRU {
	return &ByteLRU{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		entries:    map[string]*list.Element{},
	}
}

// Add inserts or refreshes key at the given size, promotes it to most
// recently used, and returns the entries evicted to restore the bounds.
// The just-added key is never evicted, even when it alone exceeds the
// byte bound — the caller decided to admit it.
func (l *ByteLRU) Add(key string, size int64) []Eviction {
	if el, ok := l.entries[key]; ok {
		e := el.Value.(*lruEntry)
		l.bytes += size - e.size
		e.size = size
		l.order.MoveToFront(el)
	} else {
		l.entries[key] = l.order.PushFront(&lruEntry{key: key, size: size})
		l.bytes += size
	}
	var out []Eviction
	for l.order.Len() > 1 &&
		((l.maxEntries > 0 && l.order.Len() > l.maxEntries) ||
			(l.maxBytes > 0 && l.bytes > l.maxBytes)) {
		out = append(out, l.removeElement(l.order.Back()))
	}
	return out
}

// Touch promotes key to most recently used; false when absent.
func (l *ByteLRU) Touch(key string) bool {
	el, ok := l.entries[key]
	if ok {
		l.order.MoveToFront(el)
	}
	return ok
}

// Remove drops key, returning its recorded size; ok is false when the
// key was absent.
func (l *ByteLRU) Remove(key string) (int64, bool) {
	el, ok := l.entries[key]
	if !ok {
		return 0, false
	}
	ev := l.removeElement(el)
	return ev.Size, true
}

func (l *ByteLRU) removeElement(el *list.Element) Eviction {
	e := el.Value.(*lruEntry)
	l.order.Remove(el)
	delete(l.entries, e.key)
	l.bytes -= e.size
	return Eviction{Key: e.key, Size: e.size}
}

// Len is the tracked entry count.
func (l *ByteLRU) Len() int { return l.order.Len() }

// Bytes is the summed size of every tracked entry.
func (l *ByteLRU) Bytes() int64 { return l.bytes }

// Keys returns every tracked key, most recently used first.
func (l *ByteLRU) Keys() []string {
	out := make([]string, 0, l.order.Len())
	for el := l.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}
