package store

import (
	"reflect"
	"testing"
)

func TestByteLRUEntryBound(t *testing.T) {
	l := NewByteLRU(2, 0)
	if ev := l.Add("a", 10); len(ev) != 0 {
		t.Fatalf("unexpected evictions %v", ev)
	}
	l.Add("b", 20)
	ev := l.Add("c", 30)
	if !reflect.DeepEqual(ev, []Eviction{{Key: "a", Size: 10}}) {
		t.Fatalf("evictions = %v, want a", ev)
	}
	if l.Len() != 2 || l.Bytes() != 50 {
		t.Errorf("len=%d bytes=%d, want 2/50", l.Len(), l.Bytes())
	}
}

func TestByteLRUByteBound(t *testing.T) {
	l := NewByteLRU(0, 100)
	l.Add("a", 40)
	l.Add("b", 40)
	ev := l.Add("c", 40)
	if !reflect.DeepEqual(ev, []Eviction{{Key: "a", Size: 40}}) {
		t.Fatalf("evictions = %v, want a", ev)
	}
	// Touching b makes c the eventual victim.
	if !l.Touch("b") {
		t.Fatal("Touch b failed")
	}
	ev = l.Add("d", 40)
	if !reflect.DeepEqual(ev, []Eviction{{Key: "c", Size: 40}}) {
		t.Fatalf("evictions = %v, want c", ev)
	}
	if got := l.Keys(); !reflect.DeepEqual(got, []string{"d", "b"}) {
		t.Errorf("Keys = %v", got)
	}
}

func TestByteLRUOversizedEntryAdmitted(t *testing.T) {
	l := NewByteLRU(0, 100)
	l.Add("small", 10)
	// An entry alone over the bound evicts everything else but stays.
	ev := l.Add("huge", 500)
	if !reflect.DeepEqual(ev, []Eviction{{Key: "small", Size: 10}}) {
		t.Fatalf("evictions = %v", ev)
	}
	if l.Len() != 1 || l.Bytes() != 500 {
		t.Errorf("len=%d bytes=%d, want 1/500", l.Len(), l.Bytes())
	}
}

func TestByteLRUResizeAndRemove(t *testing.T) {
	l := NewByteLRU(0, 0)
	l.Add("a", 10)
	l.Add("a", 25) // refresh with a new size
	if l.Bytes() != 25 || l.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after resize", l.Bytes(), l.Len())
	}
	size, ok := l.Remove("a")
	if !ok || size != 25 {
		t.Fatalf("Remove = %d, %v", size, ok)
	}
	if _, ok := l.Remove("a"); ok {
		t.Error("double Remove succeeded")
	}
	if l.Bytes() != 0 || l.Len() != 0 {
		t.Errorf("bytes=%d len=%d after remove", l.Bytes(), l.Len())
	}
}
