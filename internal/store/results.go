package store

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// resultEnvelope is the on-disk form of one cached result: the payload
// bytes wrapped with the key they were stored under and an IEEE CRC32
// of the payload. json.RawMessage round-trips the payload bytes exactly,
// so the CRC computed at write time verifies at read time.
type resultEnvelope struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// resultsIndex is results/index.json: last-access times (Unix
// nanoseconds) per key, persisted so the LRU eviction order survives
// restarts. It is advisory — a missing or stale index degrades GC
// ordering to file mtimes, never correctness.
type resultsIndex struct {
	Atime map[string]int64 `json:"atime"`
}

// ResultsStats is a point-in-time snapshot of the content-addressed
// result store, the source of the tqecd_store_* metric families.
type ResultsStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Writes      int64 `json:"writes"`
	GCEvictions int64 `json:"gc_evictions"`
	Corrupt     int64 `json:"corrupt"`
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
}

// Results is the content-addressed result store: one file per cache key
// under a sharded dir/ab/<key>.json layout (ab = the key's first two
// hex digits, keeping directories small at millions of entries), each
// written atomically via temp-file + rename and verified by CRC on
// read. A byte-bounded LRU — ordered by access time, persisted in an
// index file — garbage-collects the least recently used entries.
type Results struct {
	dir      string
	maxBytes int64

	hits      atomic.Int64
	misses    atomic.Int64
	writes    atomic.Int64
	evictions atomic.Int64
	corrupt   atomic.Int64

	mu    sync.Mutex
	lru   *ByteLRU
	atime map[string]int64 // key → last access, Unix ns
}

// OpenResults scans dir (created if absent) and rebuilds the LRU from
// the index file's access times, falling back to file mtimes for keys
// the index missed. maxBytes bounds the on-disk footprint (<= 0 selects
// 1 GiB); entries beyond it are evicted oldest-access-first on Put.
func OpenResults(dir string, maxBytes int64) (*Results, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: results dir: %w", err)
	}
	r := &Results{
		dir:      dir,
		maxBytes: maxBytes,
		lru:      NewByteLRU(0, maxBytes),
		atime:    map[string]int64{},
	}
	if err := r.scan(); err != nil {
		return nil, err
	}
	return r, nil
}

// scan loads the index and walks the shard directories, admitting every
// result file into the LRU ordered oldest access first.
func (r *Results) scan() error {
	var idx resultsIndex
	if b, err := os.ReadFile(filepath.Join(r.dir, "index.json")); err == nil {
		// A corrupt index is dropped, not fatal: order degrades to mtime.
		_ = json.Unmarshal(b, &idx)
	}
	type entry struct {
		key   string
		size  int64
		atime int64
	}
	var found []entry
	shards, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("store: results dir: %w", err)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(r.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			key, ok := strings.CutSuffix(f.Name(), ".json")
			if !ok {
				continue
			}
			fi, err := f.Info()
			if err != nil {
				continue
			}
			at := fi.ModTime().UnixNano()
			if t, ok := idx.Atime[key]; ok {
				at = t
			}
			found = append(found, entry{key: key, size: fi.Size(), atime: at})
		}
	}
	sort.Slice(found, func(a, b int) bool { return found[a].atime < found[b].atime })
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range found {
		r.atime[e.key] = e.atime
		// Admitting oldest first leaves the newest at the LRU front; any
		// evictions here enforce a bound that shrank between runs.
		for _, ev := range r.lru.Add(e.key, e.size) {
			r.dropLocked(ev)
		}
	}
	return nil
}

// Get returns the payload bytes stored under key. A missing file is a
// miss; a file that fails the envelope checks (unreadable JSON, wrong
// key, CRC mismatch) is quarantined by renaming it to <name>.corrupt,
// counted, and reported as a miss — never a panic, and never served.
func (r *Results) Get(key string) ([]byte, bool) {
	path := r.path(key)
	b, err := os.ReadFile(path)
	if err != nil {
		r.misses.Add(1)
		return nil, false
	}
	var env resultEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Key != key ||
		crc32.ChecksumIEEE(env.Payload) != env.CRC32 {
		r.quarantine(key, path)
		r.misses.Add(1)
		return nil, false
	}
	r.mu.Lock()
	r.lru.Touch(key)
	r.atime[key] = time.Now().UnixNano()
	r.mu.Unlock()
	r.hits.Add(1)
	return env.Payload, true
}

// Put stores payload under key atomically: the envelope is written to a
// temp file in the shard directory and renamed into place, so readers
// (and a crash at any instant) see either the old entry or the complete
// new one. GC then evicts the least recently used entries beyond the
// byte bound, and the access-time index is rewritten.
func (r *Results) Put(key string, payload []byte) error {
	env := resultEnvelope{V: 1, Key: key, CRC32: crc32.ChecksumIEEE(payload), Payload: payload}
	b, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: results marshal: %w", err)
	}
	path := r.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: results shard: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: results write: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: results write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: results write: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: results write: %w", err)
	}
	r.writes.Add(1)
	r.mu.Lock()
	r.atime[key] = time.Now().UnixNano()
	for _, ev := range r.lru.Add(key, int64(len(b))) {
		r.dropLocked(ev)
		r.evictions.Add(1)
	}
	r.writeIndexLocked()
	r.mu.Unlock()
	return nil
}

// Len is the number of stored entries.
func (r *Results) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// Bytes is the on-disk footprint of the stored entries (envelope files
// only; the index is excluded).
func (r *Results) Bytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Bytes()
}

// Stats snapshots the store counters.
func (r *Results) Stats() ResultsStats {
	r.mu.Lock()
	entries, bytes := r.lru.Len(), r.lru.Bytes()
	r.mu.Unlock()
	return ResultsStats{
		Hits:        r.hits.Load(),
		Misses:      r.misses.Load(),
		Writes:      r.writes.Load(),
		GCEvictions: r.evictions.Load(),
		Corrupt:     r.corrupt.Load(),
		Entries:     entries,
		Bytes:       bytes,
	}
}

// close persists the in-memory access times so the next open rebuilds
// the same LRU order.
func (r *Results) close() {
	r.mu.Lock()
	r.writeIndexLocked()
	r.mu.Unlock()
}

// quarantine sidelines a failed-verification file as <name>.corrupt and
// forgets it; the key reads as a miss from now on.
func (r *Results) quarantine(key, path string) {
	_ = os.Rename(path, path+".corrupt")
	r.corrupt.Add(1)
	r.mu.Lock()
	r.lru.Remove(key)
	delete(r.atime, key)
	r.mu.Unlock()
}

// dropLocked deletes an evicted entry's file; the caller holds r.mu.
func (r *Results) dropLocked(ev Eviction) {
	os.Remove(r.path(ev.Key))
	delete(r.atime, ev.Key)
}

// writeIndexLocked rewrites index.json atomically; the caller holds
// r.mu. Best-effort — a failure costs LRU-order fidelity, not data.
func (r *Results) writeIndexLocked() {
	b, err := json.Marshal(resultsIndex{Atime: r.atime})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(r.dir, "index-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.dir, "index.json")); err != nil {
		os.Remove(tmp.Name())
	}
}

// path is the sharded location of key's envelope file. Keys are hex
// SHA-256 digests; anything shorter than the shard width lands in a
// literal-named shard, still valid, just unsharded.
func (r *Results) path(key string) string {
	shard := key
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(r.dir, shard, key+".json")
}
