package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testKey builds a plausible 64-hex-digit cache key with a recognizable
// prefix so shard paths are exercised the way real SHA-256 keys are.
func testKey(n int) string {
	return fmt.Sprintf("%02x", n) + strings.Repeat("0", 62)
}

func openTestResults(t *testing.T, dir string, maxBytes int64) *Results {
	t.Helper()
	r, err := OpenResults(dir, maxBytes)
	if err != nil {
		t.Fatalf("OpenResults: %v", err)
	}
	return r
}

func TestResultsPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := openTestResults(t, dir, 0)
	key := testKey(0xab)
	payload := []byte(`{"name":"threecnot","volume":42}`)
	if err := r.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := r.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want payload back", got, ok)
	}
	// The file must live in the two-hex-digit shard directory.
	if _, err := os.Stat(filepath.Join(dir, "ab", key+".json")); err != nil {
		t.Errorf("sharded file missing: %v", err)
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Writes != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if _, ok := r.Get(testKey(0xcd)); ok {
		t.Error("Get of absent key succeeded")
	}
	if got := r.Stats().Misses; got != 1 {
		t.Errorf("Misses = %d, want 1", got)
	}
}

func TestResultsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	r := openTestResults(t, dir, 0)
	key := testKey(1)
	if err := r.Put(key, []byte(`{"v":1}`)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	r.close()

	r2 := openTestResults(t, dir, 0)
	if got, ok := r2.Get(key); !ok || !bytes.Equal(got, []byte(`{"v":1}`)) {
		t.Fatalf("after reopen Get = %q, %v", got, ok)
	}
	if got := r2.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	if r2.Bytes() <= 0 {
		t.Errorf("Bytes = %d, want > 0", r2.Bytes())
	}
}

// TestResultsCorruptCRCQuarantined is the corruption satellite: a
// flipped payload byte must read as a miss, move the file aside with a
// .corrupt suffix, and never panic.
func TestResultsCorruptCRCQuarantined(t *testing.T) {
	dir := t.TempDir()
	r := openTestResults(t, dir, 0)
	key := testKey(0xab)
	if err := r.Put(key, []byte(`{"name":"threecnot"}`)); err != nil {
		t.Fatalf("Put: %v", err)
	}
	path := filepath.Join(dir, "ab", key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip one byte inside the payload's value region so the envelope
	// still parses but the CRC no longer matches.
	i := bytes.Index(b, []byte("threecnot"))
	if i < 0 {
		t.Fatal("payload text not found in envelope")
	}
	b[i] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	if _, ok := r.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt original still in place: %v", err)
	}
	st := r.Stats()
	if st.Corrupt != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want corrupt=1 misses=1", st)
	}
	// The key is re-writable after quarantine.
	if err := r.Put(key, []byte(`{"name":"threecnot"}`)); err != nil {
		t.Fatalf("Put after quarantine: %v", err)
	}
	if _, ok := r.Get(key); !ok {
		t.Error("re-written entry missed")
	}
}

func TestResultsGCEvictsLRUByBytes(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("x", 200))
	wrapped := `{"p":"` + string(payload) + `"}`
	// Envelope overhead ≈ 100 bytes; bound the store to about two entries.
	r := openTestResults(t, dir, 700)
	for i := 1; i <= 3; i++ {
		if err := r.Put(testKey(i), []byte(wrapped)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2 after GC", got)
	}
	if _, ok := r.Get(testKey(1)); ok {
		t.Error("oldest entry survived GC")
	}
	st := r.Stats()
	if st.GCEvictions != 1 {
		t.Errorf("GCEvictions = %d, want 1", st.GCEvictions)
	}
	if st.Bytes > 700 {
		t.Errorf("Bytes = %d, want <= bound", st.Bytes)
	}
}

// TestResultsGCOrderSurvivesReopen: touching an old entry, then closing
// and reopening, must protect it from the next GC — the access-time
// index, not file mtime, drives the eviction order.
func TestResultsGCOrderSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	wrapped := `{"p":"` + strings.Repeat("x", 200) + `"}`
	r := openTestResults(t, dir, 700)
	if err := r.Put(testKey(1), []byte(wrapped)); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(testKey(2), []byte(wrapped)); err != nil {
		t.Fatal(err)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if _, ok := r.Get(testKey(1)); !ok {
		t.Fatal("Get 1 missed")
	}
	r.close()

	r2 := openTestResults(t, dir, 700)
	if err := r2.Put(testKey(3), []byte(wrapped)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r2.Get(testKey(1)); !ok {
		t.Error("recently touched entry evicted — index order lost")
	}
	if _, ok := r2.Get(testKey(2)); ok {
		t.Error("LRU victim survived")
	}
}

func TestStoreOpenCloseAndStats(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if s.Results == nil {
		t.Fatal("Results nil without NoResults")
	}
	if err := s.WAL.Append("submitted", "j000001", 1, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	st := s.Stats()
	if st.Dir != dir || st.Results == nil || st.WAL.Records != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	coord, err := Open(dir, Options{NoResults: true})
	if err != nil {
		t.Fatalf("Open NoResults: %v", err)
	}
	defer coord.Close()
	if coord.Results != nil {
		t.Error("Results non-nil with NoResults")
	}
	if got := coord.Stats().Results; got != nil {
		t.Error("Stats.Results non-nil with NoResults")
	}
	if got := len(coord.WAL.Recovered()); got != 1 {
		t.Errorf("recovered %d records, want 1", got)
	}
}
