// Package store is tqecd's zero-dependency durable storage layer: a
// content-addressed result store (one CRC-checked file per cache key,
// written via temp-file + rename, byte-bounded by an access-time LRU)
// and a write-ahead job log (append-only, length-prefixed, CRC-framed
// segments with rotation and compaction). Together they let a restarted
// daemon serve previously compiled results as done_cached and re-queue
// the jobs that were queued or running at crash time.
//
// The package is deliberately independent of internal/service and
// internal/fleet: WAL records carry an opaque type/job-id/JSON-data
// triple, and the result store maps hex keys to payload bytes. The
// consumers define the record vocabulary and replay semantics — replay
// is at-least-once, which the pipeline's determinism for a fixed seed
// list makes safe (re-running a job yields a byte-identical payload).
//
// Durability model: every write reaches the operating system before the
// call returns, so the store survives process death (SIGKILL, panic,
// OOM) — the failure mode restarts actually hit. Writes are not fsynced;
// a whole-machine power loss can lose the most recent records and
// results, which only costs recomputation.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Options tunes Open. Zero values select defaults.
type Options struct {
	// MaxBytes bounds the result store's on-disk footprint before GC
	// evicts least-recently-used entries (default 1 GiB).
	MaxBytes int64
	// SegmentBytes bounds one WAL segment before rotation (default 4 MiB).
	SegmentBytes int64
	// NoResults opens only the WAL — the fleet coordinator's mode, which
	// journals dispatch state but stores no payloads (workers own those).
	NoResults bool
}

// Store bundles the two durable halves under one data directory:
//
//	data-dir/
//	  results/ab/<key>.json   content-addressed result envelopes
//	  results/index.json      access-time index for GC ordering
//	  wal/NNNNNNNN.wal        framed job-lifecycle record segments
//
// Results is nil when opened with NoResults.
type Store struct {
	Dir     string
	Results *Results
	WAL     *WAL
}

// Stats is the GET /v1/store document.
type Stats struct {
	Dir     string        `json:"dir"`
	Results *ResultsStats `json:"results,omitempty"`
	WAL     WALStats      `json:"wal"`
}

// Open creates (or reopens) the store under dir, recovering the WAL's
// clean record prefix for the caller to replay.
func Open(dir string, o Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: data dir: %w", err)
	}
	s := &Store{Dir: dir}
	var err error
	if !o.NoResults {
		s.Results, err = OpenResults(filepath.Join(dir, "results"), o.MaxBytes)
		if err != nil {
			return nil, err
		}
	}
	s.WAL, err = OpenWAL(filepath.Join(dir, "wal"), o.SegmentBytes)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Close persists the result store's access-time index and releases the
// WAL's segment handle.
func (s *Store) Close() error {
	if s.Results != nil {
		s.Results.close()
	}
	return s.WAL.Close()
}

// Stats snapshots both halves.
func (s *Store) Stats() Stats {
	st := Stats{Dir: s.Dir, WAL: s.WAL.Stats()}
	if s.Results != nil {
		rs := s.Results.Stats()
		st.Results = &rs
	}
	return st
}
