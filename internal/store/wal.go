package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Record is one framed write-ahead-log entry. The store assigns Seq;
// Type, JobID, and Data are the caller's job-lifecycle vocabulary — the
// WAL itself never interprets them, which keeps internal/store free of
// service imports.
type Record struct {
	Seq        uint64          `json:"seq"`
	Type       string          `json:"type"`
	JobID      string          `json:"job_id,omitempty"`
	TimeUnixMS int64           `json:"time_unix_ms"`
	Data       json.RawMessage `json:"data,omitempty"`
}

// walFrameHeader is [4-byte big-endian payload length][4-byte big-endian
// IEEE CRC32 of the payload]. The CRC covers only the JSON payload; a
// torn write of either the header or the payload fails the frame check
// and recovery truncates the segment back to the last clean frame.
const walFrameHeader = 8

// maxWALRecordBytes rejects absurd frame lengths during recovery — a
// corrupt length prefix must not trigger a multi-gigabyte allocation.
const maxWALRecordBytes = 64 << 20

// WALStats is a point-in-time snapshot of the log, also the source the
// tqecd_store_wal_* metric families are sampled from.
type WALStats struct {
	// Records counts appends since open; Replayed is how many clean
	// records the open-time scan recovered; Truncated counts corrupt or
	// torn tail records dropped during recovery (cumulative over opens
	// is not tracked — this is this process's recovery only).
	Records   int64 `json:"records"`
	Replayed  int64 `json:"replayed"`
	Truncated int64 `json:"truncated"`
	// Bytes and Segments describe the on-disk footprint right now.
	Bytes    int64 `json:"bytes"`
	Segments int   `json:"segments"`
}

// WAL is an append-only, CRC-framed, segment-rotated record log under
// dir (files NNNNNNNN.wal, numbered monotonically). One writer at a
// time; Append is safe for concurrent callers.
type WAL struct {
	dir      string
	segBytes int64

	records   atomic.Int64
	truncated atomic.Int64

	mu        sync.Mutex
	f         *os.File // active segment, opened for append
	seg       int      // active segment number
	segSize   int64
	bytes     int64 // total across all segments
	segments  int
	seq       uint64
	recovered []Record
	closed    bool
}

// OpenWAL opens (or creates) the log under dir, scanning every segment
// in order. Clean records are exposed via Recovered for the caller to
// replay; a corrupt or torn tail in the final segment is truncated away
// so the next Append extends a clean prefix. segBytes bounds a segment
// before rotation (<= 0 selects 4 MiB).
func OpenWAL(dir string, segBytes int64) (*WAL, error) {
	if segBytes <= 0 {
		segBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: wal dir: %w", err)
	}
	w := &WAL{dir: dir, segBytes: segBytes}
	segs, err := w.listSegments()
	if err != nil {
		return nil, err
	}
	for i, seg := range segs {
		recs, cleanLen, err := readSegment(w.segPath(seg))
		if err != nil {
			return nil, err
		}
		fi, statErr := os.Stat(w.segPath(seg))
		if statErr != nil {
			return nil, fmt.Errorf("store: wal segment: %w", statErr)
		}
		if cleanLen < fi.Size() {
			w.truncated.Add(1)
			if i == len(segs)-1 {
				// Torn tail of the active segment: cut back to the clean
				// prefix so appends resume from a valid frame boundary.
				if err := os.Truncate(w.segPath(seg), cleanLen); err != nil {
					return nil, fmt.Errorf("store: wal truncate: %w", err)
				}
			}
			// Corruption mid-history (not the last segment) keeps the
			// segment's clean prefix and skips the rest; replay is
			// at-least-once, so losing suffix records only means some
			// jobs re-run.
		}
		w.recovered = append(w.recovered, recs...)
	}
	for _, r := range w.recovered {
		if r.Seq > w.seq {
			w.seq = r.Seq
		}
	}
	w.seg = 1
	if n := len(segs); n > 0 {
		w.seg = segs[n-1]
	}
	f, err := os.OpenFile(w.segPath(w.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: wal open: %w", err)
	}
	w.f = f
	if fi, err := f.Stat(); err == nil {
		w.segSize = fi.Size()
	}
	// The WAL is not yet shared, but the footprint helper asserts the
	// lock discipline, so honor it.
	w.mu.Lock()
	w.refreshFootprintLocked()
	w.mu.Unlock()
	return w, nil
}

// Recovered returns the clean records the open-time scan found, in
// append order. The slice is the caller's to keep; the WAL does not
// retain it after Compact.
func (w *WAL) Recovered() []Record { return w.recovered }

// Append frames one record and writes it to the active segment,
// rotating first when the segment is full. The write reaches the OS
// before Append returns (surviving process death, the failure mode the
// kill-and-restart tests exercise); it is not fsynced, so a power loss
// can cost the most recent records — an accepted trade for EDA batch
// jobs that can always be resubmitted.
func (w *WAL) Append(typ, jobID string, timeUnixMS int64, data any) error {
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return fmt.Errorf("store: wal marshal: %w", err)
		}
		raw = b
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: wal closed")
	}
	w.seq++
	rec := Record{Seq: w.seq, Type: typ, JobID: jobID, TimeUnixMS: timeUnixMS, Data: raw}
	if w.segSize >= w.segBytes {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := writeFrame(w.f, rec)
	if err != nil {
		return err
	}
	w.segSize += n
	w.bytes += n
	w.records.Add(1)
	return nil
}

// Compact rewrites the log to only the records whose JobID the retain
// callback accepts, collapsing every segment into one. The rewrite is
// crash-safe: retained records land in a temp file renamed to a fresh
// segment number before the old segments are removed; a crash between
// rename and removal leaves duplicate records, which replay tolerates
// (the last record per job wins). Sequence numbers are preserved.
func (w *WAL) Compact(retain func(jobID string) bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return errors.New("store: wal closed")
	}
	segs, err := w.listSegments()
	if err != nil {
		return err
	}
	var kept []Record
	for _, seg := range segs {
		recs, _, err := readSegment(w.segPath(seg))
		if err != nil {
			return err
		}
		for _, r := range recs {
			if retain(r.JobID) {
				kept = append(kept, r)
			}
		}
	}
	newSeg := w.seg + 1
	tmp, err := os.CreateTemp(w.dir, "compact-*.tmp")
	if err != nil {
		return fmt.Errorf("store: wal compact: %w", err)
	}
	var size int64
	for _, r := range kept {
		n, err := writeFrame(tmp, r)
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		size += n
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: wal compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), w.segPath(newSeg)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: wal compact: %w", err)
	}
	// The compacted segment is durable under its final name; the old
	// segments are now redundant history.
	if w.f != nil {
		w.f.Close()
	}
	for _, seg := range segs {
		os.Remove(w.segPath(seg))
	}
	f, err := os.OpenFile(w.segPath(newSeg), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: wal compact reopen: %w", err)
	}
	w.f = f
	w.seg = newSeg
	w.segSize = size
	w.refreshFootprintLocked()
	return nil
}

// Close flushes nothing (appends are unbuffered) and releases the
// active segment handle.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// Stats snapshots the log.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	bytes, segments := w.bytes, w.segments
	replayed := int64(len(w.recovered))
	w.mu.Unlock()
	return WALStats{
		Records:   w.records.Load(),
		Replayed:  replayed,
		Truncated: w.truncated.Load(),
		Bytes:     bytes,
		Segments:  segments,
	}
}

// rotateLocked starts the next numbered segment; the caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("store: wal rotate: %w", err)
	}
	w.seg++
	f, err := os.OpenFile(w.segPath(w.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: wal rotate: %w", err)
	}
	w.f = f
	w.segSize = 0
	w.segments++
	return nil
}

func (w *WAL) segPath(n int) string {
	return filepath.Join(w.dir, fmt.Sprintf("%08d.wal", n))
}

// listSegments returns the segment numbers present, ascending.
func (w *WAL) listSegments() ([]int, error) {
	ents, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("store: wal dir: %w", err)
	}
	var segs []int
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &n); err == nil && fmt.Sprintf("%08d.wal", n) == e.Name() {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// refreshFootprintLocked recomputes bytes/segments from the directory;
// the caller holds w.mu.
func (w *WAL) refreshFootprintLocked() {
	segs, err := w.listSegments()
	if err != nil {
		return
	}
	w.segments = len(segs)
	w.bytes = 0
	for _, seg := range segs {
		if fi, err := os.Stat(w.segPath(seg)); err == nil {
			w.bytes += fi.Size()
		}
	}
}

// writeFrame appends one framed record, returning the bytes written.
func writeFrame(f *os.File, rec Record) (int64, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return 0, fmt.Errorf("store: wal marshal: %w", err)
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)
	if _, err := f.Write(frame); err != nil {
		return 0, fmt.Errorf("store: wal append: %w", err)
	}
	return int64(len(frame)), nil
}

// readSegment scans one segment, returning the clean-prefix records and
// the byte offset where the clean prefix ends (== file size when the
// whole segment parsed). Any framing failure — short header, oversized
// length, CRC mismatch, short payload, bad JSON — ends the scan there.
func readSegment(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("store: wal segment: %w", err)
	}
	defer f.Close()
	var (
		recs   []Record
		offset int64
		hdr    [walFrameHeader]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return recs, offset, nil // clean EOF or torn header
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxWALRecordBytes {
			return recs, offset, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, offset, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, offset, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, offset, nil
		}
		recs = append(recs, rec)
		offset += walFrameHeader + int64(length)
	}
}
