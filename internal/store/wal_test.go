package store

import (
	"os"
	"path/filepath"
	"testing"
)

func openTestWAL(t *testing.T, dir string, segBytes int64) *WAL {
	t.Helper()
	w, err := OpenWAL(dir, segBytes)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

func TestWALAppendAndRecover(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)
	for i, typ := range []string{"submitted", "started", "terminal"} {
		if err := w.Append(typ, "j000001", int64(1000+i), map[string]int{"i": i}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openTestWAL(t, dir, 0)
	defer w2.Close()
	recs := w2.Recovered()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d, want %d", i, rec.Seq, i+1)
		}
		if rec.JobID != "j000001" {
			t.Errorf("record %d: job %q", i, rec.JobID)
		}
	}
	if recs[2].Type != "terminal" {
		t.Errorf("last type %q, want terminal", recs[2].Type)
	}
	// A fresh append continues the sequence.
	if err := w2.Append("submitted", "j000002", 2000, nil); err != nil {
		t.Fatalf("Append after recover: %v", err)
	}
	if got := w2.Stats().Replayed; got != 3 {
		t.Errorf("Replayed = %d, want 3", got)
	}
}

// TestWALTruncatedTail is the corruption satellite: a torn final record
// (simulating a crash mid-write) must replay the clean prefix, count
// one truncation, and leave the segment appendable.
func TestWALTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)
	if err := w.Append("submitted", "j000001", 1, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := w.Append("submitted", "j000002", 2, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Close()

	// Tear the last record: chop a few bytes off the segment's tail.
	seg := filepath.Join(dir, "00000001.wal")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	w2 := openTestWAL(t, dir, 0)
	recs := w2.Recovered()
	if len(recs) != 1 || recs[0].JobID != "j000001" {
		t.Fatalf("recovered %+v, want only j000001", recs)
	}
	if got := w2.Stats().Truncated; got != 1 {
		t.Errorf("Truncated = %d, want 1", got)
	}
	// The tail was cut back to the clean prefix: new appends and a third
	// recovery see a fully clean log again.
	if err := w2.Append("submitted", "j000003", 3, nil); err != nil {
		t.Fatalf("Append after truncation: %v", err)
	}
	w2.Close()
	w3 := openTestWAL(t, dir, 0)
	defer w3.Close()
	if got := len(w3.Recovered()); got != 2 {
		t.Fatalf("after repair recovered %d records, want 2", got)
	}
	if got := w3.Stats().Truncated; got != 0 {
		t.Errorf("after repair Truncated = %d, want 0", got)
	}
}

// TestWALCorruptCRC flips a payload byte mid-file; recovery must stop at
// the corrupt frame rather than deliver a damaged record.
func TestWALCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)
	for _, id := range []string{"j000001", "j000002", "j000003"} {
		if err := w.Append("submitted", id, 1, nil); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	w.Close()

	seg := filepath.Join(dir, "00000001.wal")
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flip a byte inside the second record's payload (records are equal
	// length here, so 1.5 frames in lands mid-payload of record two).
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	w2 := openTestWAL(t, dir, 0)
	defer w2.Close()
	recs := w2.Recovered()
	if len(recs) != 1 || recs[0].JobID != "j000001" {
		t.Fatalf("recovered %+v, want only the pre-corruption record", recs)
	}
	if got := w2.Stats().Truncated; got != 1 {
		t.Errorf("Truncated = %d, want 1", got)
	}
}

func TestWALRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation nearly every append.
	w := openTestWAL(t, dir, 64)
	for _, id := range []string{"j000001", "j000002", "j000003", "j000004"} {
		if err := w.Append("submitted", id, 1, map[string]string{"pad": "xxxxxxxxxxxxxxxx"}); err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := w.Append("terminal", id, 2, nil); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := w.Stats().Segments; got < 2 {
		t.Fatalf("segments = %d, want rotation to have produced several", got)
	}

	// Retain only j000003's records.
	if err := w.Compact(func(jobID string) bool { return jobID == "j000003" }); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := w.Stats().Segments; got != 1 {
		t.Errorf("after compact segments = %d, want 1", got)
	}
	// Appends continue on the compacted segment and recovery sees the
	// retained history plus the new record.
	if err := w.Append("submitted", "j000005", 3, nil); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	w.Close()
	w2 := openTestWAL(t, dir, 64)
	defer w2.Close()
	recs := w2.Recovered()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3 (two retained + one new)", len(recs))
	}
	if recs[0].JobID != "j000003" || recs[1].JobID != "j000003" || recs[2].JobID != "j000005" {
		t.Errorf("recovered jobs %q %q %q", recs[0].JobID, recs[1].JobID, recs[2].JobID)
	}
	if recs[2].Seq <= recs[1].Seq {
		t.Errorf("sequence not preserved across compaction: %d then %d", recs[1].Seq, recs[2].Seq)
	}
}

func TestWALEmptyDirRecoversNothing(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), 0)
	defer w.Close()
	if got := len(w.Recovered()); got != 0 {
		t.Fatalf("recovered %d records from empty dir", got)
	}
	if err := w.Append("submitted", "j000001", 1, nil); err != nil {
		t.Fatalf("Append: %v", err)
	}
}
