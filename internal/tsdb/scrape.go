package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"tqec/internal/obs"
)

// Gatherer is the sample source a Collector scrapes. *obs.Registry
// satisfies it.
type Gatherer interface {
	Gather() []obs.Sample
}

// Collector runs the self-scrape loop: every Interval it gathers the
// source registry into the DB, then runs AfterScrape (the SLO engine's
// Eval hooks in there). A zero or negative interval disables the loop
// entirely — Start becomes a no-op, so an unscraped process never even
// spawns the goroutine.
type Collector struct {
	DB       *DB
	Source   Gatherer
	Interval time.Duration
	// AfterScrape, if non-nil, runs after every scrape with the scrape
	// time (on the collector goroutine).
	AfterScrape func(time.Time)

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewCollector wires a collector and derives the DB's staleness gap from
// the scrape interval (3× — one missed scrape is jitter, three is an
// outage).
func NewCollector(db *DB, src Gatherer, interval time.Duration) *Collector {
	if interval > 0 {
		db.SetStaleAfter(3 * interval)
	}
	return &Collector{DB: db, Source: src, Interval: interval}
}

// ScrapeOnce gathers and appends one sample set stamped t.
func (c *Collector) ScrapeOnce(t time.Time) {
	c.DB.AppendSamples(t, c.Source.Gather())
	if c.AfterScrape != nil {
		c.AfterScrape(t)
	}
}

// Start launches the scrape goroutine (immediate first scrape, then one
// per interval). No-op if the interval is zero or it is already running.
func (c *Collector) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.Interval <= 0 || c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		tick := time.NewTicker(c.Interval)
		defer tick.Stop()
		c.ScrapeOnce(time.Now())
		for {
			select {
			case <-c.stop:
				return
			case t := <-tick.C:
				c.ScrapeOnce(t)
			}
		}
	}()
}

// Stop halts the loop and waits for the goroutine to exit. Safe to call
// more than once (graceful shutdown followed by a hard close).
func (c *Collector) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop == nil {
		return
	}
	close(c.stop)
	<-c.done
	c.stop = nil
}

type queryRangeResponse struct {
	Frames []Frame `json:"frames"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: msg})
}

// HandleQueryRange serves GET /v1/query_range. Parameters:
//
//	query  series selector: name, name*, or name{label="value",...}
//	start  unix seconds (default end−300)
//	end    unix seconds (default now)
//	step   seconds (float) or Go duration; 0/absent returns raw samples
func HandleQueryRange(db *DB) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sel, err := ParseSelector(r.URL.Query().Get("query"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		end, err := timeParam(r, "end", time.Now())
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		start, err := timeParam(r, "start", end.Add(-5*time.Minute))
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if end.Before(start) {
			httpError(w, http.StatusBadRequest, "end before start")
			return
		}
		step, err := durationParam(r, "step")
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		frames := db.Query(sel, start, end, step)
		if frames == nil {
			frames = []Frame{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(queryRangeResponse{Frames: frames})
	}
}

func timeParam(r *http.Request, name string, def time.Time) (time.Time, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	sec, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return time.Time{}, err
	}
	return time.UnixMilli(int64(sec * 1000)), nil
}

func durationParam(r *http.Request, name string) (time.Duration, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	if sec, err := strconv.ParseFloat(raw, 64); err == nil {
		return time.Duration(sec * float64(time.Second)), nil
	}
	return time.ParseDuration(raw)
}
