package tsdb

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"tqec/internal/obs"
)

// Alert lifecycle states, in escalation order.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
)

func stateValue(s string) float64 {
	switch s {
	case StatePending:
		return 1
	case StateFiring:
		return 2
	default:
		return 0
	}
}

// Objective is one declarative SLO. Exactly one of the two shapes must
// be set: a ratio objective (Bad + Target, optionally Good) alerting on
// error-budget burn bad/(good+bad) ÷ (1−target), or a latency objective
// (Histogram + Quantile + ThresholdSeconds) alerting on an estimated
// quantile exceeding the threshold. The alert condition must hold in
// BOTH the fast and the slow window (multiwindow burn-rate alerting), and
// persist for ForSeconds before a pending alert escalates to firing.
type Objective struct {
	Name string `json:"name"`

	Good   []string `json:"good,omitempty"`
	Bad    []string `json:"bad,omitempty"`
	Target float64  `json:"target,omitempty"`

	Histogram        string  `json:"histogram,omitempty"`
	Quantile         float64 `json:"quantile,omitempty"`
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`

	FastWindowSeconds float64 `json:"fast_window_seconds,omitempty"`
	SlowWindowSeconds float64 `json:"slow_window_seconds,omitempty"`
	ForSeconds        float64 `json:"for_seconds,omitempty"`
	BurnFactor        float64 `json:"burn_factor,omitempty"`
}

func (o Objective) fastWindow() time.Duration { return secondsOr(o.FastWindowSeconds, 60) }
func (o Objective) slowWindow() time.Duration { return secondsOr(o.SlowWindowSeconds, 300) }
func (o Objective) forDur() time.Duration     { return secondsOr(o.ForSeconds, 60) }

func (o Objective) factor() float64 {
	if o.BurnFactor > 0 {
		return o.BurnFactor
	}
	return 1
}

func secondsOr(s, def float64) time.Duration {
	if s <= 0 {
		s = def
	}
	return time.Duration(s * float64(time.Second))
}

// sloFile is the -slo JSON document: optional file-level window/for/
// factor defaults plus the objective list.
type sloFile struct {
	FastWindowSeconds float64     `json:"fast_window_seconds,omitempty"`
	SlowWindowSeconds float64     `json:"slow_window_seconds,omitempty"`
	ForSeconds        float64     `json:"for_seconds,omitempty"`
	BurnFactor        float64     `json:"burn_factor,omitempty"`
	Objectives        []Objective `json:"objectives"`
}

// LoadObjectives reads and validates a -slo JSON file.
func LoadObjectives(path string) ([]Objective, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	objs, err := ParseObjectives(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return objs, nil
}

// ParseObjectives parses the -slo document, folds file-level defaults
// into each objective, and validates.
func ParseObjectives(data []byte) ([]Objective, error) {
	var f sloFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	if len(f.Objectives) == 0 {
		return nil, fmt.Errorf("no objectives")
	}
	for i := range f.Objectives {
		o := &f.Objectives[i]
		if o.FastWindowSeconds == 0 {
			o.FastWindowSeconds = f.FastWindowSeconds
		}
		if o.SlowWindowSeconds == 0 {
			o.SlowWindowSeconds = f.SlowWindowSeconds
		}
		if o.ForSeconds == 0 {
			o.ForSeconds = f.ForSeconds
		}
		if o.BurnFactor == 0 {
			o.BurnFactor = f.BurnFactor
		}
		if err := o.validate(); err != nil {
			return nil, fmt.Errorf("objective %d (%q): %w", i, o.Name, err)
		}
	}
	return f.Objectives, nil
}

func (o Objective) validate() error {
	if o.Name == "" {
		return fmt.Errorf("missing name")
	}
	ratio := len(o.Bad) > 0
	latency := o.Histogram != ""
	switch {
	case ratio == latency:
		return fmt.Errorf("exactly one of bad+target (ratio) or histogram+quantile+threshold_seconds (latency) must be set")
	case ratio:
		if o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("target must be in (0, 1), got %g", o.Target)
		}
	case latency:
		if o.Quantile <= 0 || o.Quantile >= 1 {
			return fmt.Errorf("quantile must be in (0, 1), got %g", o.Quantile)
		}
		if o.ThresholdSeconds <= 0 {
			return fmt.Errorf("threshold_seconds must be > 0, got %g", o.ThresholdSeconds)
		}
	}
	return nil
}

// AlertStatus is one objective's live state in the /v1/alerts document.
type AlertStatus struct {
	SLO         string  `json:"slo"`
	State       string  `json:"state"`
	SinceUnixMS int64   `json:"since_unix_ms,omitempty"`
	BurnFast    float64 `json:"burn_fast"`
	BurnSlow    float64 `json:"burn_slow"`
	ForSeconds  float64 `json:"for_seconds"`
}

// AlertEvent records one state transition (journal-style, bounded ring).
type AlertEvent struct {
	TimeUnixMS int64   `json:"time_unix_ms"`
	SLO        string  `json:"slo"`
	From       string  `json:"from"`
	To         string  `json:"to"`
	BurnFast   float64 `json:"burn_fast"`
	BurnSlow   float64 `json:"burn_slow"`
}

// AlertsDoc is the GET /v1/alerts payload.
type AlertsDoc struct {
	Alerts []AlertStatus `json:"alerts"`
	Events []AlertEvent  `json:"events"`
}

const maxAlertEvents = 256

type alertState struct {
	state    string
	since    time.Time
	burnFast float64
	burnSlow float64
}

// Engine evaluates objectives against the DB. Transitions are mirrored
// into tqecd_slo_* metric families on the given registry, logged via
// slog, and kept in a bounded event ring served alongside the alerts.
type Engine struct {
	db   *DB
	objs []Objective
	log  *slog.Logger

	mu     sync.Mutex
	states []*alertState
	events []AlertEvent

	alertState  *obs.GaugeVec
	burnFast    *obs.GaugeVec
	burnSlow    *obs.GaugeVec
	firing      *obs.Gauge
	transitions *obs.Counter
}

// NewEngine builds an engine over db. reg may be nil (no metric
// mirroring, used by tests); logger nil falls back to slog.Default.
func NewEngine(db *DB, objs []Objective, reg *obs.Registry, logger *slog.Logger) *Engine {
	if logger == nil {
		logger = slog.Default()
	}
	e := &Engine{db: db, objs: objs, log: logger}
	for range objs {
		e.states = append(e.states, &alertState{state: StateInactive})
	}
	if reg != nil {
		e.alertState = reg.GaugeVec("tqecd_slo_alert_state", "SLO alert state: 0 inactive, 1 pending, 2 firing.", "slo")
		e.burnFast = reg.GaugeVec("tqecd_slo_burn_rate_fast", "Error-budget burn rate over the fast window.", "slo")
		e.burnSlow = reg.GaugeVec("tqecd_slo_burn_rate_slow", "Error-budget burn rate over the slow window.", "slo")
		e.firing = reg.Gauge("tqecd_slo_alerts_firing", "Number of SLO alerts currently firing.")
		e.transitions = reg.Counter("tqecd_slo_transitions_total", "Total SLO alert state transitions.")
	}
	return e
}

// Eval recomputes every objective's burn rates as of now and advances the
// alert state machine: inactive → pending when the condition first holds
// in both windows, pending → firing once it has held for the objective's
// `for` duration, any state → inactive when it stops holding.
func (e *Engine) Eval(now time.Time) {
	e.mu.Lock()
	defer e.mu.Unlock()
	firing := 0
	for i, obj := range e.objs {
		st := e.states[i]
		st.burnFast = e.burn(obj, now, obj.fastWindow())
		st.burnSlow = e.burn(obj, now, obj.slowWindow())
		cond := st.burnFast >= obj.factor() && st.burnSlow >= obj.factor()
		next := st.state
		switch {
		case !cond:
			next = StateInactive
		case st.state == StateInactive:
			next = StatePending
		case st.state == StatePending && now.Sub(st.since) >= obj.forDur():
			next = StateFiring
		}
		if next != st.state {
			e.transitionLocked(st, obj, next, now)
		}
		if st.state == StateFiring {
			firing++
		}
		if e.alertState != nil {
			e.alertState.With(obj.Name).Set(stateValue(st.state))
			e.burnFast.With(obj.Name).Set(st.burnFast)
			e.burnSlow.With(obj.Name).Set(st.burnSlow)
		}
	}
	if e.firing != nil {
		e.firing.Set(int64(firing))
	}
}

func (e *Engine) transitionLocked(st *alertState, obj Objective, next string, now time.Time) {
	prev := st.state
	st.state = next
	st.since = now
	if e.transitions != nil {
		e.transitions.Inc()
	}
	e.events = append(e.events, AlertEvent{
		TimeUnixMS: now.UnixMilli(),
		SLO:        obj.Name,
		From:       prev,
		To:         next,
		BurnFast:   st.burnFast,
		BurnSlow:   st.burnSlow,
	})
	if len(e.events) > maxAlertEvents {
		e.events = e.events[len(e.events)-maxAlertEvents:]
	}
	args := []any{
		"slo", obj.Name, "from", prev, "to", next,
		"burn_fast", st.burnFast, "burn_slow", st.burnSlow,
	}
	if next == StateInactive {
		e.log.Info("slo alert transition", args...)
	} else {
		e.log.Warn("slo alert transition", args...)
	}
}

func (e *Engine) burn(obj Objective, now time.Time, window time.Duration) float64 {
	start := now.Add(-window)
	if obj.Histogram != "" {
		q := e.histQuantile(obj, start, now)
		if math.IsNaN(q) {
			return 0
		}
		return q / obj.ThresholdSeconds
	}
	bad := e.sumIncrease(obj.Bad, start, now)
	total := bad + e.sumIncrease(obj.Good, start, now)
	if total <= 0 {
		return 0 // no traffic in the window — no evidence of burn
	}
	return (bad / total) / (1 - obj.Target)
}

func (e *Engine) sumIncrease(names []string, start, end time.Time) float64 {
	var sum float64
	for _, name := range names {
		for _, f := range e.db.Query(Selector{Name: name}, start, end, 0) {
			sum += Increase(f.Points)
		}
	}
	return sum
}

func (e *Engine) histQuantile(obj Objective, start, end time.Time) float64 {
	frames := e.db.Query(Selector{Name: obj.Histogram + "_bucket"}, start, end, 0)
	// Sum per-le increases across all matching series (workers, vec
	// children): cumulativity in le survives both subtraction and
	// addition, so the merged buckets stay a valid histogram.
	acc := map[float64]float64{}
	for _, f := range frames {
		le, ok := leBound(f.Labels)
		if !ok {
			continue
		}
		acc[le] += Increase(f.Points)
	}
	buckets := make([]Bucket, 0, len(acc))
	for b, c := range acc {
		buckets = append(buckets, Bucket{UpperBound: b, Count: c})
	}
	return EstimateQuantile(obj.Quantile, buckets)
}

func leBound(labels []obs.Label) (float64, bool) {
	for _, l := range labels {
		if l.Name != "le" {
			continue
		}
		if l.Value == "+Inf" {
			return math.Inf(1), true
		}
		v, err := strconv.ParseFloat(l.Value, 64)
		return v, err == nil
	}
	return 0, false
}

// Bucket is one cumulative histogram bucket: Count observations with
// value ≤ UpperBound (math.Inf(1) for the +Inf bucket).
type Bucket struct {
	UpperBound float64
	Count      float64
}

// EstimateQuantile returns the linear-interpolation estimate of quantile
// q from cumulative buckets (Prometheus histogram_quantile semantics).
// It returns NaN when there are no buckets or no observations. When the
// quantile lands in the +Inf bucket the highest finite bound is returned
// — the histogram cannot resolve beyond it.
func EstimateQuantile(q float64, buckets []Bucket) float64 {
	if len(buckets) == 0 {
		return math.NaN()
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].UpperBound < buckets[j].UpperBound })
	total := buckets[len(buckets)-1].Count
	if total <= 0 || math.IsNaN(total) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	idx := 0
	for idx < len(buckets)-1 && buckets[idx].Count < rank {
		idx++
	}
	if math.IsInf(buckets[idx].UpperBound, 1) {
		if idx == 0 {
			return math.NaN()
		}
		return buckets[idx-1].UpperBound
	}
	lower, prev := 0.0, 0.0
	if idx > 0 {
		lower = buckets[idx-1].UpperBound
		prev = buckets[idx-1].Count
	}
	inBucket := buckets[idx].Count - prev
	if inBucket <= 0 {
		return buckets[idx].UpperBound
	}
	return lower + (buckets[idx].UpperBound-lower)*(rank-prev)/inBucket
}

// Snapshot returns the live alerts document.
func (e *Engine) Snapshot() AlertsDoc {
	e.mu.Lock()
	defer e.mu.Unlock()
	doc := AlertsDoc{Alerts: make([]AlertStatus, 0, len(e.objs)), Events: append([]AlertEvent{}, e.events...)}
	for i, obj := range e.objs {
		st := e.states[i]
		a := AlertStatus{
			SLO:        obj.Name,
			State:      st.state,
			BurnFast:   st.burnFast,
			BurnSlow:   st.burnSlow,
			ForSeconds: obj.forDur().Seconds(),
		}
		if !st.since.IsZero() {
			a.SinceUnixMS = st.since.UnixMilli()
		}
		doc.Alerts = append(doc.Alerts, a)
	}
	return doc
}

// HandleAlerts serves GET /v1/alerts.
func HandleAlerts(e *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e.Snapshot())
	}
}
