package tsdb

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"tqec/internal/obs"
)

func TestEstimateQuantile(t *testing.T) {
	inf := math.Inf(1)
	t.Run("exact bucket boundary", func(t *testing.T) {
		// Rank lands exactly on the first bucket's full count: the
		// estimate must be exactly that bucket's upper bound, no bleed
		// into the next bucket.
		b := []Bucket{{1, 10}, {2, 20}, {inf, 20}}
		if got := EstimateQuantile(0.5, b); got != 1 {
			t.Fatalf("q0.5 = %g, want exactly 1", got)
		}
	})
	t.Run("interpolation", func(t *testing.T) {
		// q0.75 of 20 obs → rank 15, halfway through bucket (1, 2].
		b := []Bucket{{1, 10}, {2, 20}, {inf, 20}}
		if got := EstimateQuantile(0.75, b); got != 1.5 {
			t.Fatalf("q0.75 = %g, want 1.5", got)
		}
	})
	t.Run("empty histogram", func(t *testing.T) {
		if got := EstimateQuantile(0.95, nil); !math.IsNaN(got) {
			t.Fatalf("no buckets: q = %g, want NaN", got)
		}
		b := []Bucket{{1, 0}, {inf, 0}}
		if got := EstimateQuantile(0.95, b); !math.IsNaN(got) {
			t.Fatalf("zero observations: q = %g, want NaN", got)
		}
	})
	t.Run("quantile in +Inf bucket", func(t *testing.T) {
		b := []Bucket{{1, 1}, {inf, 10}}
		if got := EstimateQuantile(0.99, b); got != 1 {
			t.Fatalf("q0.99 = %g, want highest finite bound 1", got)
		}
	})
	t.Run("only +Inf bucket", func(t *testing.T) {
		if got := EstimateQuantile(0.5, []Bucket{{inf, 5}}); !math.IsNaN(got) {
			t.Fatalf("q = %g, want NaN", got)
		}
	})
}

// TestQuantileAfterCounterReset drives the engine's histogram path across
// a worker restart: bucket counters drop to zero mid-window and the
// post-reset observations must still be counted via Increase.
func TestQuantileAfterCounterReset(t *testing.T) {
	db := New(32)
	le := func(v string) []obs.Label { return []obs.Label{{Name: "le", Value: v}} }
	// Before reset: 4 obs ≤ 1, 8 total ≤ 2, 8 total.
	db.Append("h_bucket", le("1"), obs.SampleCounter, ts(0), 4)
	db.Append("h_bucket", le("2"), obs.SampleCounter, ts(0), 8)
	db.Append("h_bucket", le("+Inf"), obs.SampleCounter, ts(0), 8)
	// Restart: counters reset, then 2 slow obs land in (2, +Inf].
	db.Append("h_bucket", le("1"), obs.SampleCounter, ts(10), 0)
	db.Append("h_bucket", le("2"), obs.SampleCounter, ts(10), 0)
	db.Append("h_bucket", le("+Inf"), obs.SampleCounter, ts(10), 2)
	obj := Objective{Name: "lat", Histogram: "h", Quantile: 0.5, ThresholdSeconds: 1}
	e := NewEngine(db, []Objective{obj}, nil, nil)
	// Window covers both sides of the reset. Increases: le1 = 0 (reset
	// to 0 adds 0), le2 = 0, +Inf = 2 → all mass beyond the highest
	// finite bound, q0.5 = 2 (highest finite bound).
	got := e.histQuantile(obj, ts(0), ts(20))
	if got != 2 {
		t.Fatalf("post-reset q0.5 = %g, want 2", got)
	}
}

// seedRatio appends good/bad counter samples at 1s cadence over
// [from, to) with the given per-tick failure pattern.
func seedRatio(db *DB, from, to int64, goodRate, badRate float64) {
	var good, bad float64
	for s := from; s < to; s++ {
		good += goodRate
		bad += badRate
		db.Append("jobs_done_total", nil, obs.SampleCounter, ts(s), good)
		db.Append("jobs_failed_total", nil, obs.SampleCounter, ts(s), bad)
	}
}

func TestSLOAlertLifecycle(t *testing.T) {
	db := New(1024)
	reg := obs.NewRegistry()
	obj := Objective{
		Name:              "job-success",
		Good:              []string{"jobs_done_total"},
		Bad:               []string{"jobs_failed_total"},
		Target:            0.99,
		FastWindowSeconds: 10,
		SlowWindowSeconds: 30,
		ForSeconds:        5,
	}
	e := NewEngine(db, []Objective{obj}, reg, nil)

	// Healthy traffic: all good, burn 0, alert inactive.
	seedRatio(db, 0, 40, 1, 0)
	e.Eval(ts(40))
	if st := e.Snapshot().Alerts[0]; st.State != StateInactive || st.BurnFast != 0 {
		t.Fatalf("healthy: %+v", st)
	}

	// Failure streak: 50%% failures burns 50× a 1%% budget in both
	// windows → pending.
	seedRatio(db, 40, 80, 1, 1)
	e.Eval(ts(80))
	if st := e.Snapshot().Alerts[0]; st.State != StatePending {
		t.Fatalf("after streak: state = %q, want pending (%+v)", st.State, st)
	}

	// Condition persists past `for` → firing.
	seedRatio(db, 80, 90, 1, 1)
	e.Eval(ts(90))
	doc := e.Snapshot()
	if st := doc.Alerts[0]; st.State != StateFiring {
		t.Fatalf("after for-duration: state = %q, want firing (%+v)", st.State, st)
	}
	if len(doc.Events) != 2 || doc.Events[0].To != StatePending || doc.Events[1].To != StateFiring {
		t.Fatalf("events = %+v", doc.Events)
	}

	// Metric mirror: state gauge 2, firing count 1, 2 transitions.
	samples := reg.Gather()
	want := map[string]float64{
		"tqecd_slo_alert_state|slo=job-success": 2,
		"tqecd_slo_alerts_firing":               1,
		"tqecd_slo_transitions_total":           2,
	}
	for _, s := range samples {
		key := s.Name
		for _, l := range s.Labels {
			key += "|" + l.Name + "=" + l.Value
		}
		if w, ok := want[key]; ok {
			if s.Value != w {
				t.Errorf("metric %s = %g, want %g", key, s.Value, w)
			}
			delete(want, key)
		}
	}
	for k := range want {
		t.Errorf("metric %s not gathered", k)
	}

	// Recovery: clean traffic pushes both windows back under budget →
	// inactive again (three more transitions total).
	seedRatio(db, 90, 130, 5, 0)
	e.Eval(ts(130))
	if st := e.Snapshot().Alerts[0]; st.State != StateInactive {
		t.Fatalf("after recovery: state = %q, want inactive (%+v)", st.State, st)
	}
}

// TestSLOFlickerResetsPending pins the multiwindow guard: a burst that
// clears before the `for` duration drops the alert back to inactive
// rather than escalating.
func TestSLOFlickerResetsPending(t *testing.T) {
	db := New(1024)
	obj := Objective{
		Name: "flicker", Good: []string{"jobs_done_total"}, Bad: []string{"jobs_failed_total"},
		Target: 0.99, FastWindowSeconds: 5, SlowWindowSeconds: 10, ForSeconds: 30,
	}
	e := NewEngine(db, []Objective{obj}, nil, nil)
	seedRatio(db, 0, 20, 1, 1)
	e.Eval(ts(20))
	if st := e.Snapshot().Alerts[0]; st.State != StatePending {
		t.Fatalf("burst: state = %q, want pending", st.State)
	}
	seedRatio(db, 20, 40, 1, 0)
	e.Eval(ts(40)) // fast window clean again, still < for duration
	if st := e.Snapshot().Alerts[0]; st.State != StateInactive {
		t.Fatalf("flicker: state = %q, want inactive", st.State)
	}
}

func TestParseObjectives(t *testing.T) {
	data := []byte(`{
	  "fast_window_seconds": 15,
	  "for_seconds": 20,
	  "objectives": [
	    {"name": "ok-ratio", "good": ["g_total"], "bad": ["b_total"], "target": 0.99},
	    {"name": "ok-latency", "histogram": "h_seconds", "quantile": 0.95,
	     "threshold_seconds": 2, "fast_window_seconds": 5}
	  ]
	}`)
	objs, err := ParseObjectives(data)
	if err != nil {
		t.Fatal(err)
	}
	if objs[0].FastWindowSeconds != 15 || objs[0].ForSeconds != 20 {
		t.Fatalf("file defaults not folded in: %+v", objs[0])
	}
	if objs[1].FastWindowSeconds != 5 {
		t.Fatalf("objective override lost: %+v", objs[1])
	}

	for name, bad := range map[string]string{
		"no objectives": `{"objectives": []}`,
		"both shapes":   `{"objectives":[{"name":"x","bad":["b"],"target":0.9,"histogram":"h","quantile":0.5,"threshold_seconds":1}]}`,
		"neither shape": `{"objectives":[{"name":"x"}]}`,
		"bad target":    `{"objectives":[{"name":"x","bad":["b"],"target":1.5}]}`,
		"bad quantile":  `{"objectives":[{"name":"x","histogram":"h","quantile":2,"threshold_seconds":1}]}`,
		"no threshold":  `{"objectives":[{"name":"x","histogram":"h","quantile":0.5}]}`,
		"no name":       `{"objectives":[{"bad":["b"],"target":0.9}]}`,
	} {
		if _, err := ParseObjectives([]byte(bad)); err == nil {
			t.Errorf("%s: parse succeeded, want error", name)
		}
	}
}

func TestHandleAlerts(t *testing.T) {
	db := New(64)
	obj := Objective{Name: "x", Bad: []string{"b_total"}, Good: []string{"g_total"}, Target: 0.9}
	e := NewEngine(db, []Objective{obj}, nil, nil)
	e.Eval(ts(0))
	rec := httptest.NewRecorder()
	HandleAlerts(e)(rec, httptest.NewRequest("GET", "/v1/alerts", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var doc AlertsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Alerts) != 1 || doc.Alerts[0].SLO != "x" || doc.Alerts[0].State != StateInactive {
		t.Fatalf("doc = %+v", doc)
	}
}

// TestLatencyObjective drives a latency SLO through the quantile path
// end to end: a registry histogram is scraped into the DB and the p95
// crossing the threshold trips the alert condition.
func TestLatencyObjective(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("tqecd_fake_run_seconds", "fake", []float64{0.1, 1, 10})
	db := New(256)
	col := NewCollector(db, reg, time.Second)
	obj := Objective{
		Name: "p95", Histogram: "tqecd_fake_run_seconds", Quantile: 0.95,
		ThresholdSeconds: 1, FastWindowSeconds: 10, SlowWindowSeconds: 20, ForSeconds: 1,
	}
	e := NewEngine(db, []Objective{obj}, nil, nil)

	col.ScrapeOnce(ts(0))
	for i := 0; i < 100; i++ {
		h.Observe(0.05) // fast
	}
	col.ScrapeOnce(ts(5))
	e.Eval(ts(5))
	if st := e.Snapshot().Alerts[0]; st.State != StateInactive {
		t.Fatalf("fast traffic: state = %q (%+v)", st.State, st)
	}

	for i := 0; i < 100; i++ {
		h.Observe(5) // slow: p95 lands in (1, 10]
	}
	col.ScrapeOnce(ts(10))
	e.Eval(ts(10))
	st := e.Snapshot().Alerts[0]
	if st.State != StatePending {
		t.Fatalf("slow traffic: state = %q, want pending (%+v)", st.State, st)
	}
	if st.BurnFast <= 1 {
		t.Fatalf("burn_fast = %g, want > 1", st.BurnFast)
	}
}
