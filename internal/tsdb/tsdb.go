// Package tsdb is a zero-dependency, bounded-memory time-series store
// for metrics history. Every series holds its samples in a fixed-capacity
// ring, so memory is bounded by (series count × capacity) regardless of
// uptime; the series count itself is capped, with refusals counted. The
// store is label-keyed and kind-aware (counter vs gauge): counter resets
// are handled at query time by Increase, and series that have stopped
// advancing while the store keeps receiving scrapes are marked stale.
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"tqec/internal/obs"
)

// Point is one timestamped value. T is unix milliseconds.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// Series is one named, labelled stream of points retained in a
// fixed-capacity ring (oldest samples evicted first).
type Series struct {
	Name   string
	Labels []obs.Label // sorted by label name
	Kind   string      // obs.SampleCounter or obs.SampleGauge

	buf  []Point
	head int // next write slot
	n    int // live samples, ≤ len(buf)
}

func (s *Series) push(p Point) {
	s.buf[s.head] = p
	s.head = (s.head + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
}

// points returns the retained samples oldest-first.
func (s *Series) points() []Point {
	out := make([]Point, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(start+i)%len(s.buf)])
	}
	return out
}

func (s *Series) last() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	i := s.head - 1
	if i < 0 {
		i += len(s.buf)
	}
	return s.buf[i], true
}

// Defaults for New and the series-count bound.
const (
	DefaultCapacity  = 512
	DefaultMaxSeries = 8192
)

// DB is the store. All methods are safe for concurrent use.
type DB struct {
	mu            sync.RWMutex
	capacity      int
	maxSeries     int
	staleAfter    time.Duration
	series        map[string]*Series
	lastT         int64 // unix ms of the newest sample appended anywhere
	droppedSeries int64
}

// New returns a store whose series each retain up to capacity samples.
// capacity ≤ 0 selects DefaultCapacity.
func New(capacity int) *DB {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &DB{
		capacity:  capacity,
		maxSeries: DefaultMaxSeries,
		series:    make(map[string]*Series),
	}
}

// SetStaleAfter sets the gap after which a series that has stopped
// advancing — while the store keeps receiving newer samples elsewhere —
// is marked stale in query results. Zero disables stale marking.
func (db *DB) SetStaleAfter(d time.Duration) {
	db.mu.Lock()
	db.staleAfter = d
	db.mu.Unlock()
}

// Stats reports the live series count and how many new-series creations
// were refused by the bound.
func (db *DB) Stats() (series int, droppedSeries int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series), db.droppedSeries
}

func seriesKey(name string, labels []obs.Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(1)
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortedLabels(labels []obs.Label) []obs.Label {
	if len(labels) == 0 {
		return nil
	}
	out := append([]obs.Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Append records one sample. The series is created on first append; its
// kind is fixed then. Appends to new series beyond the series bound are
// dropped and counted.
func (db *DB) Append(name string, labels []obs.Label, kind string, t time.Time, v float64) {
	labels = sortedLabels(labels)
	key := seriesKey(name, labels)
	ms := t.UnixMilli()
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[key]
	if !ok {
		if len(db.series) >= db.maxSeries {
			db.droppedSeries++
			return
		}
		s = &Series{Name: name, Labels: labels, Kind: kind, buf: make([]Point, db.capacity)}
		db.series[key] = s
	}
	s.push(Point{T: ms, V: v})
	if ms > db.lastT {
		db.lastT = ms
	}
}

// AppendSamples records a whole gathered scrape at time t, tagging every
// sample with the extra labels (e.g. worker="w1" on the coordinator).
func (db *DB) AppendSamples(t time.Time, samples []obs.Sample, extra ...obs.Label) {
	for _, s := range samples {
		labels := s.Labels
		if len(extra) > 0 {
			labels = append(append([]obs.Label(nil), labels...), extra...)
		}
		db.Append(s.Name, labels, s.Kind, t, s.Value)
	}
}

// Matcher is one label equality constraint in a Selector.
type Matcher struct {
	Name  string
	Value string
}

// Selector picks series by name (exact, or prefix when the query ends
// with '*') plus label equality matchers.
type Selector struct {
	Name   string
	Prefix bool
	Labels []Matcher
}

// ParseSelector parses `name`, `name*`, or `name{label="value",...}`.
// Label values use the Prometheus escapes \\, \", and \n.
func ParseSelector(q string) (Selector, error) {
	q = strings.TrimSpace(q)
	if q == "" {
		return Selector{}, fmt.Errorf("empty selector")
	}
	var sel Selector
	name := q
	if i := strings.IndexByte(q, '{'); i >= 0 {
		if !strings.HasSuffix(q, "}") {
			return Selector{}, fmt.Errorf("selector %q: unterminated label matcher", q)
		}
		name = q[:i]
		ms, err := parseMatchers(q[i+1 : len(q)-1])
		if err != nil {
			return Selector{}, fmt.Errorf("selector %q: %w", q, err)
		}
		sel.Labels = ms
	}
	if strings.HasSuffix(name, "*") {
		sel.Prefix = true
		name = strings.TrimSuffix(name, "*")
	}
	if name == "" && !sel.Prefix {
		return Selector{}, fmt.Errorf("selector %q: missing metric name", q)
	}
	sel.Name = name
	return sel, nil
}

func parseMatchers(body string) ([]Matcher, error) {
	var out []Matcher
	rest := strings.TrimSpace(body)
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("matcher %q: missing '='", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if name == "" {
			return nil, fmt.Errorf("matcher %q: empty label name", rest)
		}
		rest = strings.TrimSpace(rest[eq+1:])
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("label %q: value must be quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = strings.TrimSpace(rest[i+1:])
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %q: unterminated value", name)
		}
		out = append(out, Matcher{Name: name, Value: val.String()})
		if rest == "" {
			break
		}
		if !strings.HasPrefix(rest, ",") {
			return nil, fmt.Errorf("unexpected %q after matcher", rest)
		}
		rest = strings.TrimSpace(rest[1:])
	}
	return out, nil
}

func (sel Selector) matches(s *Series) bool {
	if sel.Prefix {
		if !strings.HasPrefix(s.Name, sel.Name) {
			return false
		}
	} else if s.Name != sel.Name {
		return false
	}
	for _, m := range sel.Labels {
		ok := false
		for _, l := range s.Labels {
			if l.Name == m.Name {
				ok = l.Value == m.Value
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Frame is one series' slice of a range query.
type Frame struct {
	Name   string      `json:"name"`
	Labels []obs.Label `json:"labels,omitempty"`
	Kind   string      `json:"kind"`
	Stale  bool        `json:"stale"`
	Points []Point     `json:"points"`
}

// Query returns matching series restricted to [start, end], sorted by
// name then labels. step ≤ 0 returns raw samples; step > 0 downsamples
// to the last sample in each (t−step, t] bucket, skipping empty buckets
// (gaps stay gaps). Series with no samples in the window are omitted. A
// series whose newest retained sample trails the store's write cursor by
// more than the configured staleness gap is flagged Stale — on a
// coordinator this is how a dead worker's history is marked.
func (db *DB) Query(sel Selector, start, end time.Time, step time.Duration) []Frame {
	startMS, endMS := start.UnixMilli(), end.UnixMilli()
	db.mu.RLock()
	defer db.mu.RUnlock()
	var frames []Frame
	for _, s := range db.series {
		if !sel.matches(s) {
			continue
		}
		pts := s.points()
		lo := sort.Search(len(pts), func(i int) bool { return pts[i].T >= startMS })
		hi := sort.Search(len(pts), func(i int) bool { return pts[i].T > endMS })
		var window []Point
		if step > 0 {
			window = downsample(pts[lo:hi], startMS, endMS, step.Milliseconds())
		} else {
			window = append([]Point{}, pts[lo:hi]...)
		}
		if len(window) == 0 {
			continue
		}
		stale := false
		if db.staleAfter > 0 {
			if last, ok := s.last(); ok && db.lastT-last.T > db.staleAfter.Milliseconds() {
				stale = true
			}
		}
		frames = append(frames, Frame{Name: s.Name, Labels: s.Labels, Kind: s.Kind, Stale: stale, Points: window})
	}
	sort.Slice(frames, func(i, j int) bool {
		if frames[i].Name != frames[j].Name {
			return frames[i].Name < frames[j].Name
		}
		return seriesKey("", frames[i].Labels) < seriesKey("", frames[j].Labels)
	})
	return frames
}

func downsample(pts []Point, startMS, endMS, stepMS int64) []Point {
	var out []Point
	j := 0
	for bucketEnd := startMS + stepMS; bucketEnd-stepMS < endMS; bucketEnd += stepMS {
		var pick *Point
		for j < len(pts) && pts[j].T <= bucketEnd {
			if pts[j].T > bucketEnd-stepMS {
				pick = &pts[j]
			}
			j++
		}
		if pick != nil {
			out = append(out, Point{T: bucketEnd, V: pick.V})
		}
	}
	return out
}

// Increase returns the total increase of a counter series over the given
// points, tolerating counter resets: a decrease means the process behind
// the counter restarted, so the post-reset value counts in full.
func Increase(pts []Point) float64 {
	var inc float64
	for i := 1; i < len(pts); i++ {
		d := pts[i].V - pts[i-1].V
		if d < 0 {
			d = pts[i].V
		}
		inc += d
	}
	return inc
}
