package tsdb

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"tqec/internal/obs"
)

func ts(sec int64) time.Time { return time.Unix(1_700_000_000+sec, 0) }

// TestRingEvictionOrder pins the fixed-capacity ring contract: once full,
// the oldest sample is evicted per append and reads come back
// oldest-first in insertion order.
func TestRingEvictionOrder(t *testing.T) {
	db := New(4)
	for i := 0; i < 7; i++ {
		db.Append("m", nil, obs.SampleGauge, ts(int64(i)), float64(i))
	}
	frames := db.Query(Selector{Name: "m"}, ts(0), ts(100), 0)
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	pts := frames[0].Points
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4 (capacity)", len(pts))
	}
	for i, p := range pts {
		wantV := float64(3 + i) // samples 0..2 evicted
		wantT := ts(int64(3 + i)).UnixMilli()
		if p.V != wantV || p.T != wantT {
			t.Fatalf("point %d = {%d %g}, want {%d %g}", i, p.T, p.V, wantT, wantV)
		}
	}
}

func TestQueryWindowAndLabels(t *testing.T) {
	db := New(16)
	w1 := []obs.Label{{Name: "worker", Value: "w1"}}
	w2 := []obs.Label{{Name: "worker", Value: "w2"}}
	for i := int64(0); i < 10; i++ {
		db.Append("tqecd_jobs_done_total", w1, obs.SampleCounter, ts(i), float64(i))
		db.Append("tqecd_jobs_done_total", w2, obs.SampleCounter, ts(i), float64(i*2))
	}
	// Label-restricted query clips to [3s, 6s].
	sel, err := ParseSelector(`tqecd_jobs_done_total{worker="w2"}`)
	if err != nil {
		t.Fatal(err)
	}
	frames := db.Query(sel, ts(3), ts(6), 0)
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	if got := len(frames[0].Points); got != 4 {
		t.Fatalf("window points = %d, want 4", got)
	}
	if frames[0].Points[0].V != 6 {
		t.Fatalf("first windowed value = %g, want 6", frames[0].Points[0].V)
	}
	// Prefix selector matches both series, sorted by labels.
	frames = db.Query(Selector{Name: "tqecd_", Prefix: true}, ts(0), ts(100), 0)
	if len(frames) != 2 {
		t.Fatalf("prefix frames = %d, want 2", len(frames))
	}
	if frames[0].Labels[0].Value != "w1" || frames[1].Labels[0].Value != "w2" {
		t.Fatalf("frames not sorted by labels: %v / %v", frames[0].Labels, frames[1].Labels)
	}
}

func TestDownsampleSkipsGaps(t *testing.T) {
	db := New(32)
	// Samples at 1s..4s, then a gap, then 20s.
	for _, sec := range []int64{1, 2, 3, 4, 20} {
		db.Append("g", nil, obs.SampleGauge, ts(sec), float64(sec))
	}
	frames := db.Query(Selector{Name: "g"}, ts(0), ts(20), 5*time.Second)
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	pts := frames[0].Points
	// Buckets (0,5], (5,10], (10,15], (15,20]: gap buckets are skipped.
	want := []Point{
		{T: ts(5).UnixMilli(), V: 4},
		{T: ts(20).UnixMilli(), V: 20},
	}
	if len(pts) != len(want) {
		t.Fatalf("downsampled = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestStaleMarking(t *testing.T) {
	db := New(16)
	db.SetStaleAfter(3 * time.Second)
	dead := []obs.Label{{Name: "worker", Value: "dead"}}
	live := []obs.Label{{Name: "worker", Value: "live"}}
	db.Append("m", dead, obs.SampleGauge, ts(0), 1)
	db.Append("m", live, obs.SampleGauge, ts(0), 1)
	// Only the live worker keeps reporting; the store's write cursor
	// advances past the dead worker's last sample + staleAfter.
	for i := int64(1); i <= 10; i++ {
		db.Append("m", live, obs.SampleGauge, ts(i), 1)
	}
	frames := db.Query(Selector{Name: "m"}, ts(0), ts(10), 0)
	if len(frames) != 2 {
		t.Fatalf("frames = %d, want 2", len(frames))
	}
	byWorker := map[string]Frame{}
	for _, f := range frames {
		byWorker[f.Labels[0].Value] = f
	}
	if !byWorker["dead"].Stale {
		t.Fatal("dead worker's series not marked stale")
	}
	if byWorker["live"].Stale {
		t.Fatal("live worker's series wrongly marked stale")
	}
}

func TestIncreaseCounterReset(t *testing.T) {
	// 5 → 9 (+4), restart to 2 (+2), 2 → 3 (+1) = 7.
	pts := []Point{{1, 5}, {2, 9}, {3, 2}, {4, 3}}
	if got := Increase(pts); got != 7 {
		t.Fatalf("Increase = %g, want 7", got)
	}
	if got := Increase(nil); got != 0 {
		t.Fatalf("Increase(nil) = %g, want 0", got)
	}
	if got := Increase(pts[:1]); got != 0 {
		t.Fatalf("Increase(single) = %g, want 0", got)
	}
}

func TestSeriesBound(t *testing.T) {
	db := New(4)
	db.maxSeries = 2
	db.Append("a", nil, obs.SampleGauge, ts(0), 1)
	db.Append("b", nil, obs.SampleGauge, ts(0), 1)
	db.Append("c", nil, obs.SampleGauge, ts(0), 1) // refused
	n, dropped := db.Stats()
	if n != 2 || dropped != 1 {
		t.Fatalf("Stats = (%d, %d), want (2, 1)", n, dropped)
	}
}

func TestParseSelectorErrors(t *testing.T) {
	for _, bad := range []string{"", "m{", `m{worker=w1}`, `m{worker="w1"`, `m{="v"}`, "{}"} {
		if _, err := ParseSelector(bad); err == nil {
			t.Errorf("ParseSelector(%q) succeeded, want error", bad)
		}
	}
	sel, err := ParseSelector(`m{a="x\"y", b="p\\q"}`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Labels[0].Value != `x"y` || sel.Labels[1].Value != `p\q` {
		t.Fatalf("escaped values = %+v", sel.Labels)
	}
}

func TestGatherRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("tqecd_rt_total", "rt")
	db := New(8)
	col := NewCollector(db, reg, time.Second)
	c.Add(2)
	col.ScrapeOnce(ts(0))
	c.Add(3)
	col.ScrapeOnce(ts(1))
	frames := db.Query(Selector{Name: "tqecd_rt_total"}, ts(0), ts(1), 0)
	if len(frames) != 1 || len(frames[0].Points) != 2 {
		t.Fatalf("frames = %+v", frames)
	}
	if frames[0].Kind != obs.SampleCounter {
		t.Fatalf("kind = %q", frames[0].Kind)
	}
	if got := Increase(frames[0].Points); got != 3 {
		t.Fatalf("increase = %g, want 3", got)
	}
}

func TestHandleQueryRange(t *testing.T) {
	db := New(8)
	db.Append("tqecd_jobs_queued", nil, obs.SampleGauge, ts(0), 1)
	db.Append("tqecd_jobs_queued", nil, obs.SampleGauge, ts(1), 2)
	h := HandleQueryRange(db)

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/query_range?query=tqecd_jobs_queued&start=1700000000&end=1700000010", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Frames []Frame `json:"frames"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Frames) != 1 || len(resp.Frames[0].Points) != 2 {
		t.Fatalf("body = %s", rec.Body.String())
	}

	// No match → empty frames array, not null.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/query_range?query=nope", nil))
	if body := rec.Body.String(); body != "{\"frames\":[]}\n" {
		t.Fatalf("no-match body = %q", body)
	}

	// Bad selector → 400.
	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/v1/query_range?query=m{", nil))
	if rec.Code != 400 {
		t.Fatalf("bad selector status = %d", rec.Code)
	}
}
