// Package tqec compresses topologically quantum-error-corrected (TQEC)
// braided circuits by simultaneous primal and dual defect bridge
// compression, reproducing Tseng & Chang, "A Bridge-based Algorithm for
// Simultaneous Primal and Dual Defects Compression on Topologically
// Quantum-error-corrected Circuits" (DAC 2022).
//
// The compiler takes a reversible or Clifford+T circuit, lowers it to the
// ICM (Initialization, CNOT, Measurement) form, modularizes it into the
// 2-D primal–dual graph, applies I-shaped simplification, the
// flipping-operation primal bridging and iterative dual bridging, places
// the resulting super-modules with a 2.5-D B*-tree simulated-annealing
// floorplanner, and routes the dual-defect nets with a negotiated A*
// router. The figure of merit is the space-time volume (#x × #y × #z) of
// the resulting three-dimensional geometric description.
//
// Quick start:
//
//	c := tqec.NewCircuit("example", 3)
//	c.AppendNew(tqec.CNOT, 1, 0)
//	c.AppendNew(tqec.T, 2)
//	res, err := tqec.Compile(c, tqec.Options{Mode: tqec.Full})
//	// res.Volume, res.CanonicalVolume, res.Summary()...
//
// The dual-only baseline of Hsu et al. (DAC'21) is available as
// Mode: tqec.DualOnly, and the bench package entry points regenerate the
// paper's Tables 1–3 and Fig. 1.
package tqec

import (
	"context"
	"io"

	"tqec/internal/bench"
	"tqec/internal/canonical"
	"tqec/internal/circuit"
	"tqec/internal/compress"
	"tqec/internal/decompose"
	"tqec/internal/deform"
	"tqec/internal/geom"
	"tqec/internal/icm"
	"tqec/internal/revlib"
)

// Circuit is a gate-level quantum circuit (reversible or Clifford+T).
type Circuit = circuit.Circuit

// Gate is one gate instance.
type Gate = circuit.Gate

// GateKind enumerates the supported gates.
type GateKind = circuit.GateKind

// Supported gate kinds.
const (
	X       = circuit.X
	Z       = circuit.Z
	H       = circuit.H
	S       = circuit.S
	Sdg     = circuit.Sdg
	T       = circuit.T
	Tdg     = circuit.Tdg
	CNOT    = circuit.CNOT
	CZ      = circuit.CZ
	Toffoli = circuit.Toffoli
	MCT     = circuit.MCT
)

// NewCircuit creates an empty circuit with the given qubit count.
func NewCircuit(name string, width int) *Circuit { return circuit.New(name, width) }

// ParseReal reads a RevLib .real reversible circuit.
func ParseReal(r io.Reader) (*Circuit, error) { return revlib.Parse(r) }

// ParseRealString reads a RevLib .real circuit from a string.
func ParseRealString(s string) (*Circuit, error) { return revlib.ParseString(s) }

// WriteReal writes a reversible circuit in .real format.
func WriteReal(w io.Writer, c *Circuit) error { return revlib.Write(w, c) }

// ParseText reads the plain-text gate-list format (supports Clifford+T).
func ParseText(r io.Reader) (*Circuit, error) { return circuit.ParseText(r) }

// WriteText writes the plain-text gate-list format.
func WriteText(w io.Writer, c *Circuit) error { return circuit.WriteText(w, c) }

// Samples holds small embedded .real circuits, including "threecnot", the
// paper's running example.
var Samples = revlib.Samples

// Mode selects the compression algorithm.
type Mode = compress.Mode

// Compression modes.
const (
	// Full is the paper's simultaneous primal+dual bridge compression.
	Full = compress.Full
	// DualOnly is the dual-bridging-only baseline of Hsu et al. [10].
	DualOnly = compress.DualOnly
	// DeformOnly applies topological deformation without bridging
	// (Fig. 1(c)).
	DeformOnly = compress.DeformOnly
)

// Effort scales the optimization budget.
type Effort = compress.Effort

// Effort levels.
const (
	EffortFast   = compress.EffortFast
	EffortNormal = compress.EffortNormal
	EffortHigh   = compress.EffortHigh
)

// Options configures a compilation.
type Options = compress.Options

// Result carries per-stage artifacts and the headline volumes.
type Result = compress.Result

// Compile runs the seven-stage compression pipeline on a circuit.
func Compile(c *Circuit, opt Options) (*Result, error) {
	return compress.CompileContext(context.Background(), c, opt)
}

// CompileContext is Compile with cancellation support: ctx is polled at
// stage transitions and inside the annealing and routing hot loops, so a
// cancelled or timed-out compile stops within one iteration boundary and
// returns ctx's error.
func CompileContext(ctx context.Context, c *Circuit, opt Options) (*Result, error) {
	return compress.CompileContext(ctx, c, opt)
}

// CompileBest runs the pipeline once per seed in parallel (simulated-
// annealing restarts) and returns the smallest-volume result;
// deterministic for a fixed seed list. parallel ≤ 0 selects GOMAXPROCS.
// Seeds that fail do not sink the compile while at least one succeeds
// (Result.SeedsTried / Result.SeedErrors record the partial failures);
// when every seed fails the error is a *compress.AllSeedsFailedError
// aggregating the per-seed causes.
func CompileBest(c *Circuit, opt Options, seeds []int64, parallel int) (*Result, error) {
	return compress.CompileBestContext(context.Background(), c, opt, seeds, parallel)
}

// CompileBestContext is CompileBest with cancellation support (see
// CompileContext).
func CompileBestContext(ctx context.Context, c *Circuit, opt Options, seeds []int64, parallel int) (*Result, error) {
	return compress.CompileBestContext(ctx, c, opt, seeds, parallel)
}

// ICM is the Initialization/CNOT/Measurement representation.
type ICM = icm.Rep

// BuildICM lowers a circuit to Clifford+T and expands it to ICM form.
func BuildICM(c *Circuit) (*ICM, error) {
	res, err := decompose.ToCliffordT(c)
	if err != nil {
		return nil, err
	}
	return icm.FromCliffordT(res.Circuit)
}

// CanonicalVolume returns the canonical-form space-time volume of an ICM
// circuit (the closed form the paper's Table 2 uses).
func CanonicalVolume(rep *ICM) int { return canonical.Volume(rep) }

// CanonicalDescription builds the canonical 3-D geometric description.
func CanonicalDescription(rep *ICM) (*Description, error) { return canonical.Describe(rep) }

// DeformCanonical applies geometry-level topological deformation to the
// canonical form (braid scheduling + pitch compaction; Fig. 1(c)) and
// returns the deformed description. The braiding relation is preserved.
func DeformCanonical(rep *ICM) (*Description, error) {
	res, err := deform.TimeCompact(rep)
	if err != nil {
		return nil, err
	}
	return res.Description, nil
}

// Description is a 3-D geometric description (defects + boxes).
type Description = geom.Description

// Benchmark is one workload of the paper's Table 1.
type Benchmark = bench.Spec

// Benchmarks is the paper's benchmark suite with published numbers.
var Benchmarks = bench.Table1

// BenchmarkByName finds a Table-1 benchmark.
func BenchmarkByName(name string) (Benchmark, bool) { return bench.ByName(name) }
