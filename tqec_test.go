package tqec_test

import (
	"strings"
	"testing"

	"tqec"
)

func TestQuickstartAPI(t *testing.T) {
	c := tqec.NewCircuit("api", 5)
	for i := 0; i < 25; i++ {
		c.AppendNew(tqec.CNOT, (i+1)%5, i%5)
	}
	c.AppendNew(tqec.T, 2)
	res, err := tqec.Compile(c, tqec.Options{Mode: tqec.Full, Seed: 1, Effort: tqec.EffortNormal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Volume <= 0 || res.CanonicalVolume <= res.Volume {
		t.Fatalf("volumes: %d vs canonical %d", res.Volume, res.CanonicalVolume)
	}
}

func TestSamplesAndParsers(t *testing.T) {
	c, err := tqec.ParseRealString(tqec.Samples["threecnot"])
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tqec.WriteReal(&sb, c); err != nil {
		t.Fatal(err)
	}
	if _, err := tqec.ParseReal(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := tqec.WriteText(&sb, c); err != nil {
		t.Fatal(err)
	}
	if _, err := tqec.ParseText(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
}

func TestICMAndCanonical(t *testing.T) {
	c, err := tqec.ParseRealString(tqec.Samples["threecnot"])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tqec.BuildICM(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := tqec.CanonicalVolume(rep); got != 54 {
		t.Fatalf("canonical = %d, want 54", got)
	}
	desc, err := tqec.CanonicalDescription(rep)
	if err != nil {
		t.Fatal(err)
	}
	if desc.Volume() != 54 {
		t.Fatalf("geometric canonical = %d", desc.Volume())
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	if len(tqec.Benchmarks) != 8 {
		t.Fatalf("benchmarks = %d", len(tqec.Benchmarks))
	}
	b, ok := tqec.BenchmarkByName("ham15_107")
	if !ok || b.Qubits != 3753 {
		t.Fatalf("lookup: %+v %v", b, ok)
	}
}

func TestCompileBestFacade(t *testing.T) {
	c, err := tqec.ParseRealString(tqec.Samples["threecnot"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := tqec.CompileBest(c, tqec.Options{Mode: tqec.Full}, []int64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlacedVolume != 6 {
		t.Fatalf("placed = %d, want 6", res.PlacedVolume)
	}
}

func TestDeformOnlyFacade(t *testing.T) {
	c, err := tqec.ParseRealString(tqec.Samples["threecnot"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := tqec.Compile(c, tqec.Options{Mode: tqec.DeformOnly, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Volume >= res.CanonicalVolume {
		t.Fatalf("deform-only %d not below canonical %d", res.Volume, res.CanonicalVolume)
	}
}

func TestDeformCanonicalFacade(t *testing.T) {
	c, err := tqec.ParseRealString(tqec.Samples["threecnot"])
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tqec.BuildICM(c)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := tqec.DeformCanonical(rep)
	if err != nil {
		t.Fatal(err)
	}
	if v := desc.Volume(); v >= 54 || v < 32 {
		t.Fatalf("deformed volume = %d", v)
	}
}
